/// \file stats.hpp
/// \brief Counters, latency histograms and windowed throughput meters.
///
/// Every service exposes counters (ops, bytes, errors) that the experiment
/// harness and the QoS monitor read. Counters are lock-free atomics;
/// histograms use logarithmic buckets under a mutex (they sit off the hot
/// path in measurement loops only).

#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace blobseer {

/// Monotonic counter, safe for concurrent increment.
class Counter {
  public:
    void add(std::uint64_t n = 1) noexcept {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t get() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/// Up/down gauge with a monotonic high-water mark — tracks "how many
/// right now" quantities (in-flight RPCs of a bounded window) where a
/// Counter's monotonic total is the wrong shape.
class Gauge {
  public:
    void add(std::uint64_t n = 1) noexcept {
        const std::uint64_t now =
            value_.fetch_add(n, std::memory_order_relaxed) + n;
        std::uint64_t hw = high_.load(std::memory_order_relaxed);
        while (now > hw &&
               !high_.compare_exchange_weak(hw, now,
                                            std::memory_order_relaxed)) {
        }
    }

    void sub(std::uint64_t n = 1) noexcept {
        value_.fetch_sub(n, std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t get() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

    /// Highest value the gauge ever reached.
    [[nodiscard]] std::uint64_t high_water() const noexcept {
        return high_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
    std::atomic<std::uint64_t> high_{0};
};

/// Log-bucketed histogram of microsecond latencies (or any positive
/// values). 128 buckets cover [1, ~1.8e13] with ~25% resolution.
class Histogram {
  public:
    void record(std::uint64_t value) noexcept {
        const std::scoped_lock lock(mu_);
        buckets_[bucket_of(value)]++;
        count_++;
        sum_ += value;
        max_ = std::max(max_, value);
        min_ = count_ == 1 ? value : std::min(min_, value);
    }

    [[nodiscard]] std::uint64_t count() const noexcept {
        const std::scoped_lock lock(mu_);
        return count_;
    }

    [[nodiscard]] double mean() const noexcept {
        const std::scoped_lock lock(mu_);
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }

    [[nodiscard]] std::uint64_t min() const noexcept {
        const std::scoped_lock lock(mu_);
        return min_;
    }

    [[nodiscard]] std::uint64_t max() const noexcept {
        const std::scoped_lock lock(mu_);
        return max_;
    }

    /// Approximate quantile (bucket upper bound), q in [0, 1].
    [[nodiscard]] std::uint64_t quantile(double q) const noexcept {
        const std::scoped_lock lock(mu_);
        if (count_ == 0) {
            return 0;
        }
        const auto target = static_cast<std::uint64_t>(
            q * static_cast<double>(count_ - 1)) + 1;
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            seen += buckets_[i];
            if (seen >= target) {
                return upper_bound(i);
            }
        }
        return max_;
    }

    void reset() noexcept {
        const std::scoped_lock lock(mu_);
        buckets_.fill(0);
        count_ = sum_ = max_ = min_ = 0;
    }

  private:
    static constexpr std::size_t kBuckets = 128;

    static std::size_t bucket_of(std::uint64_t v) noexcept {
        if (v < 2) {
            return v;  // buckets 0 and 1 are exact
        }
        // 4 sub-buckets per power of two.
        const int log2 = 63 - __builtin_clzll(v);
        const std::uint64_t sub = (v >> (log2 >= 2 ? log2 - 2 : 0)) & 3;
        const std::size_t idx =
            2 + static_cast<std::size_t>(log2 - 1) * 4 + sub;
        return std::min(idx, kBuckets - 1);
    }

    static std::uint64_t upper_bound(std::size_t idx) noexcept {
        if (idx < 2) {
            return idx;
        }
        const std::size_t log2 = (idx - 2) / 4 + 1;
        const std::size_t sub = (idx - 2) % 4;
        return (1ULL << log2) + ((sub + 1) << (log2 >= 2 ? log2 - 2 : 0)) - 1;
    }

    mutable std::mutex mu_;  // guards everything below
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
    std::uint64_t min_ = 0;
};

/// Windowed throughput meter: record(bytes) events are bucketed into fixed
/// wall-clock windows; the QoS monitor samples per-window byte totals to
/// build its time series.
class Meter {
  public:
    explicit Meter(Duration window = milliseconds(100))
        : window_(window), origin_(Clock::now()) {}

    void record(std::uint64_t bytes) {
        const auto idx = window_index(Clock::now());
        const std::scoped_lock lock(mu_);
        if (windows_.size() <= idx) {
            windows_.resize(idx + 1, 0);
        }
        windows_[idx] += bytes;
    }

    /// Total bytes in the most recent \p n complete windows.
    [[nodiscard]] std::uint64_t recent_bytes(std::size_t n) const {
        const auto current = window_index(Clock::now());
        const std::scoped_lock lock(mu_);
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (current < 1 + i) {
                break;
            }
            const std::size_t idx = current - 1 - i;
            if (idx < windows_.size()) {
                total += windows_[idx];
            }
        }
        return total;
    }

    /// Snapshot of all windows so far (for offline analysis).
    [[nodiscard]] std::vector<std::uint64_t> series() const {
        const std::scoped_lock lock(mu_);
        return {windows_.begin(), windows_.end()};
    }

    [[nodiscard]] Duration window() const noexcept { return window_; }

  private:
    [[nodiscard]] std::size_t window_index(TimePoint t) const {
        return static_cast<std::size_t>((t - origin_) / window_);
    }

    const Duration window_;
    const TimePoint origin_;
    mutable std::mutex mu_;  // guards windows_
    std::deque<std::uint64_t> windows_;
};

/// Fixed set of counters every RPC-exposed service keeps.
struct ServiceStats {
    Counter ops;          ///< RPCs served
    Counter bytes_in;     ///< payload bytes received
    Counter bytes_out;    ///< payload bytes sent
    Counter errors;       ///< failed RPCs
    Histogram latency_us; ///< service-side latency per op
};

}  // namespace blobseer
