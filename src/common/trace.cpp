#include "common/trace.hpp"

#include <bit>
#include <chrono>

#include "common/hash.hpp"
#include "common/metrics.hpp"

namespace blobseer::trace {
namespace {

thread_local TraceContext tls_context;

/// Id source: a process-wide counter pushed through mix64, seeded from
/// the wall clock so two daemons started at different times don't mint
/// colliding trace ids.
std::atomic<std::uint64_t>& id_counter() {
    static std::atomic<std::uint64_t> counter{static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count())};
    return counter;
}

std::uint64_t next_id() noexcept {
    return mix64(id_counter().fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

TraceContext current() noexcept { return tls_context; }

void set_current(const TraceContext& ctx) noexcept { tls_context = ctx; }

std::uint64_t new_trace_id() noexcept {
    std::uint64_t id = next_id();
    while (id == 0) {
        id = next_id();  // 0 means "untraced"; skip it
    }
    return id;
}

std::uint32_t new_span_id() noexcept {
    std::uint32_t id = static_cast<std::uint32_t>(next_id());
    while (id == 0) {
        id = static_cast<std::uint32_t>(next_id());
    }
    return id;
}

std::uint64_t now_unix_us() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : slots_(std::max<std::size_t>(capacity, 1)) {}

void TraceBuffer::record(const SpanRecord& rec) noexcept {
    const auto words = std::bit_cast<std::array<std::uint64_t, kWords>>(rec);

    Slot& slot =
        slots_[head_.fetch_add(1, std::memory_order_relaxed) % slots_.size()];
    std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
    if ((seq & 1) != 0 ||
        !slot.seq.compare_exchange_strong(seq, seq + 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        // Another writer owns the slot (ring wrapped a full lap while it
        // was mid-write). Dropping beats spinning on the RPC path.
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    for (std::size_t i = 0; i < kWords; ++i) {
        slot.words[i].store(words[i], std::memory_order_relaxed);
    }
    slot.seq.store(seq + 2, std::memory_order_release);
    recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> TraceBuffer::snapshot(std::uint64_t trace_id,
                                              std::size_t max) const {
    std::vector<SpanRecord> out;
    out.reserve(std::min(max, slots_.size()));
    for (const Slot& slot : slots_) {
        if (out.size() >= max) {
            break;
        }
        const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
        if (before == 0 || (before & 1) != 0) {
            continue;  // never written, or write in progress
        }
        std::array<std::uint64_t, kWords> words;
        for (std::size_t i = 0; i < kWords; ++i) {
            words[i] = slot.words[i].load(std::memory_order_relaxed);
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.seq.load(std::memory_order_relaxed) != before) {
            continue;  // torn read: a writer recycled the slot
        }
        const auto rec = std::bit_cast<SpanRecord>(words);
        if (trace_id != 0 && rec.trace_id != trace_id) {
            continue;
        }
        out.push_back(rec);
    }
    return out;
}

TraceBuffer& buffer() {
    static TraceBuffer* instance = [] {
        auto* buf = new TraceBuffer();
        // Expose ring health through the registry; the buffer outlives
        // every snapshot, so callback binding is safe for process life.
        auto& registry = MetricsRegistry::instance();
        (void)registry.bind_callback("trace_spans_recorded_total", {},
                                     [buf] { return buf->recorded(); });
        (void)registry.bind_callback("trace_spans_dropped_total", {},
                                     [buf] { return buf->dropped(); });
        return buf;
    }();
    return *instance;
}

}  // namespace blobseer::trace
