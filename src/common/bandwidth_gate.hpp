/// \file bandwidth_gate.hpp
/// \brief Serialized-link bandwidth model used by the simulated network.
///
/// Every simulated NIC is a serial resource: transmitting `n` bytes at rate
/// `r` occupies the link for `n / r` seconds. Concurrent callers queue up,
/// which is exactly how N clients hammering one data provider split its
/// bandwidth in the paper's Grid'5000 experiments. The gate keeps a virtual
/// "link free at" timestamp: a transfer starting now over a link that is
/// already busy until T gets the slot [max(now, T), max(now, T) + n/r) and
/// the calling thread sleeps until its slot ends.
///
/// The gate never burns CPU — callers sleep — so hundreds of simulated
/// clients coexist on a single physical core.

#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/clock.hpp"

namespace blobseer {

class BandwidthGate {
  public:
    /// \param bytes_per_second link capacity; 0 means "infinite" (the gate
    ///        becomes a no-op, useful for unit tests).
    explicit BandwidthGate(std::uint64_t bytes_per_second)
        : rate_(bytes_per_second), free_at_(Clock::now()) {}

    /// Block until \p bytes have been "transmitted" through this link.
    /// Thread-safe; concurrent transfers are serialized in FIFO order of
    /// lock acquisition.
    void transmit(std::uint64_t bytes) {
        if (rate_ == 0 || bytes == 0) {
            return;
        }
        TimePoint my_end;
        {
            const std::scoped_lock lock(mu_);
            const TimePoint now = Clock::now();
            const TimePoint start = std::max(now, free_at_);
            const auto busy = nanoseconds(
                static_cast<std::int64_t>(1e9 * static_cast<double>(bytes) /
                                          static_cast<double>(rate_)));
            my_end = start + busy;
            free_at_ = my_end;
            busy_ns_ += busy.count();
        }
        std::this_thread::sleep_until(my_end);
    }

    /// Cumulative time this link has spent transmitting. Together with a
    /// real-byte counter this yields the *effective* service rate — the
    /// signal that exposes slow-but-alive ("gray") links to the QoS
    /// monitor.
    [[nodiscard]] std::int64_t busy_ns() const {
        const std::scoped_lock lock(mu_);
        return busy_ns_;
    }

    /// Instantaneous queueing delay if a transfer started now. Used by the
    /// QoS monitor as a congestion signal.
    [[nodiscard]] Duration backlog() const {
        const std::scoped_lock lock(mu_);
        const TimePoint now = Clock::now();
        return free_at_ > now ? free_at_ - now : Duration::zero();
    }

    [[nodiscard]] std::uint64_t rate() const noexcept { return rate_; }

  private:
    const std::uint64_t rate_;
    mutable std::mutex mu_;  // guards free_at_ and busy_ns_
    TimePoint free_at_;
    std::int64_t busy_ns_ = 0;
};

}  // namespace blobseer
