/// \file trace.hpp
/// \brief Dapper-style distributed tracing primitives (DESIGN.md §13).
///
/// A trace follows one top-level client operation (a blob write, a read,
/// a clone) across every RPC it fans out into. The context — trace id,
/// parent span id, sampled flag — rides in the v7 frame header
/// (protocol.hpp), so it crosses process boundaries with zero extra
/// messages. Inside a process it lives in a thread-local slot:
/// ServiceClient stamps it into outgoing frames on the calling thread,
/// and the Dispatcher installs the incoming frame's context around each
/// handler so nested RPCs inherit it.
///
/// Span model (shared-span-id, as in Dapper): the client mints a fresh
/// span id per outgoing RPC and records a kClient span for it; the
/// server handling that RPC records a kServer span under the SAME span
/// id, with the queue wait and handle time only it can know. A span-tree
/// viewer merges the two halves by span id and hangs children off
/// parent_span.
///
/// Completed spans land in a bounded lock-free ring (TraceBuffer) when
/// the trace is sampled or the span was slow; kTraceDump drains the ring
/// remotely. The ring is seqlock-per-slot over relaxed atomic words —
/// writers never block, readers discard slots that changed underneath
/// them — so it is safe (and TSan-clean) on the RPC hot path.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

namespace blobseer::trace {

/// Wire-carried trace context. trace_id == 0 means "not traced": spans
/// are neither minted nor recorded, which keeps the untraced hot path at
/// a thread-local read and a branch.
struct TraceContext {
    std::uint64_t trace_id = 0;
    std::uint32_t span_id = 0;  ///< span of the current operation
    std::uint8_t flags = 0;     ///< bit 0: sampled (record even if fast)

    static constexpr std::uint8_t kSampled = 0x01;

    [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
    [[nodiscard]] bool sampled() const noexcept {
        return (flags & kSampled) != 0;
    }

    bool operator==(const TraceContext&) const = default;
};

/// One completed span. Trivially copyable, exactly 10 machine words —
/// the TraceBuffer stores it wordwise through relaxed atomics.
struct SpanRecord {
    std::uint64_t trace_id = 0;
    std::uint32_t span_id = 0;
    std::uint32_t parent_span = 0;  ///< 0 for root spans
    std::uint64_t start_unix_us = 0;  ///< wall clock, for cross-host merge
    std::uint64_t queue_us = 0;     ///< dispatch-queue wait (server spans)
    std::uint64_t duration_us = 0;  ///< handle / round-trip time
    std::uint64_t bytes = 0;        ///< payload bytes moved, if known
    std::uint32_t node = 0;         ///< NodeId that recorded the span
    std::uint8_t kind = 0;          ///< 0 = client half, 1 = server half
    std::uint8_t status = 0;        ///< rpc Status (0 = Ok)
    char op[22] = {};               ///< op name, NUL-padded

    static constexpr std::uint8_t kClient = 0;
    static constexpr std::uint8_t kServer = 1;

    void set_op(std::string_view name) noexcept {
        const std::size_t n = std::min(name.size(), sizeof(op) - 1);
        std::memcpy(op, name.data(), n);
        std::memset(op + n, 0, sizeof(op) - n);
    }

    [[nodiscard]] std::string_view op_name() const noexcept {
        return {op, ::strnlen(op, sizeof(op))};
    }
};

static_assert(sizeof(SpanRecord) == 80, "ring stores spans as 10 words");
static_assert(std::is_trivially_copyable_v<SpanRecord>);

/// The calling thread's trace context (zero when not tracing).
[[nodiscard]] TraceContext current() noexcept;

/// Overwrite the calling thread's context (prefer TraceScope).
void set_current(const TraceContext& ctx) noexcept;

/// Fresh non-zero ids (process-unique, collision odds negligible).
[[nodiscard]] std::uint64_t new_trace_id() noexcept;
[[nodiscard]] std::uint32_t new_span_id() noexcept;

/// Wall-clock microseconds since the Unix epoch (span timestamps must be
/// comparable across hosts, so the steady clock is the wrong tool).
[[nodiscard]] std::uint64_t now_unix_us() noexcept;

/// RAII: install \p ctx on this thread, restore the previous context on
/// scope exit. Handlers and client ops wrap themselves in one so every
/// nested RPC issued from the scope inherits the trace.
class TraceScope {
  public:
    explicit TraceScope(const TraceContext& ctx) noexcept
        : saved_(current()) {
        set_current(ctx);
    }
    ~TraceScope() { set_current(saved_); }
    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;

  private:
    TraceContext saved_;
};

/// Bounded lock-free ring of completed spans. Fixed capacity, newest
/// wins: a full ring overwrites the oldest slot. Writers are wait-free
/// apart from one CAS (a lost race drops the span — under contention
/// losing a span beats stalling an RPC thread); readers validate each
/// slot with its sequence word and skip torn ones.
class TraceBuffer {
  public:
    static constexpr std::size_t kDefaultCapacity = 4096;

    /// Spans of unsampled traces are still recorded when at least this
    /// slow — the tail is exactly what retrospective debugging needs.
    static constexpr std::uint64_t kSlowUs = 50'000;

    explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

    /// True if a span with these properties belongs in the ring.
    [[nodiscard]] static bool should_record(
        bool sampled, std::uint64_t duration_us) noexcept {
        return sampled || duration_us >= kSlowUs;
    }

    /// Store \p rec (may silently drop under writer contention).
    void record(const SpanRecord& rec) noexcept;

    /// Copy out up to \p max stored spans; trace_id == 0 matches all.
    [[nodiscard]] std::vector<SpanRecord> snapshot(
        std::uint64_t trace_id = 0,
        std::size_t max = kDefaultCapacity) const;

    [[nodiscard]] std::uint64_t recorded() const noexcept {
        return recorded_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t dropped() const noexcept {
        return dropped_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t capacity() const noexcept {
        return slots_.size();
    }

  private:
    static constexpr std::size_t kWords = sizeof(SpanRecord) / 8;

    /// Seqlock per slot: seq even = stable, odd = being written. The
    /// payload words are relaxed atomics so concurrent read/write is
    /// defined behavior; the seq acquire/release pair orders them.
    struct Slot {
        std::atomic<std::uint64_t> seq{0};
        std::array<std::atomic<std::uint64_t>, kWords> words{};
    };

    std::vector<Slot> slots_;
    std::atomic<std::uint64_t> head_{0};
    std::atomic<std::uint64_t> recorded_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

/// The process-wide span ring every dispatcher and client records into
/// (one per process mirrors the one-registry-per-process model; spans
/// carry the node id so multi-node-in-process tests still disentangle).
[[nodiscard]] TraceBuffer& buffer();

}  // namespace blobseer::trace
