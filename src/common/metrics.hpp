/// \file metrics.hpp
/// \brief Process-wide metrics registry (DESIGN.md §13).
///
/// Every observable quantity in a deployment — client counters, per-service
/// RPC stats, version-manager gauges, repair/dedup/CAS counters, engine
/// compaction totals, thread-pool backlogs — registers here under a stable
/// name plus a label set, and one snapshot() walks them all. The registry
/// is what the kMetricsDump RPC, the Prometheus /metrics endpoint and
/// `blobseer_cli metrics` serve; the bespoke status RPCs (kVmStatus,
/// kDedupStatus, kRepairStatus) remain as typed views over the same
/// underlying counters.
///
/// Two registration styles:
///
///  * owned:   `registry.counter("rpc_server_requests_total", labels)`
///             get-or-creates a registry-owned metric with a stable
///             address for the process lifetime (hot paths cache the
///             reference; there is no per-increment registry cost).
///  * bound:   services whose stats are struct members (ServiceStats,
///             ClientStats, ...) bind non-owning pointers through a
///             MetricsGroup, whose destructor unbinds them — the group is
///             declared AFTER the metrics it binds so deregistration
///             happens first.
///
/// Callback metrics cover quantities that already live behind a service's
/// own lock (repair backlog, chunks stored, pool queue depth): the
/// registry samples the std::function at snapshot time. Callbacks must be
/// cheap and must not call back into the registry.
///
/// Name collisions (two live DataProviders with the same node id in two
/// test clusters) are made unique with an automatic "inst" label instead
/// of being rejected — a test fixture must never fail because an earlier
/// fixture leaked a name.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace blobseer {

/// Ordered label set attached to one metric (rendered in given order).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : std::uint8_t {
    kCounter = 0,
    kGauge = 1,
    kHistogram = 2,
    kMeter = 3,
    kCallback = 4,  ///< gauge-valued, sampled from a function
};

/// One metric's value at snapshot time. Field usage by kind:
///  counter/callback: value; gauge: value + high_water;
///  meter: value = all-time bytes, sum = bytes in the last 10 windows;
///  histogram: count/sum/min/max + per-bucket (upper_bound, count) pairs
///  for the non-empty buckets.
struct MetricSample {
    std::string name;
    MetricLabels labels;
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t value = 0;
    std::uint64_t high_water = 0;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

    bool operator==(const MetricSample&) const = default;
};

struct MetricsSnapshot {
    std::vector<MetricSample> samples;

    bool operator==(const MetricsSnapshot&) const = default;
};

/// Render a snapshot in the Prometheus text exposition format (0.0.4):
/// counters as `name_total`-style plain series, gauges with a `_peak`
/// companion, histograms as cumulative `_bucket{le=...}` + `_sum` +
/// `_count`.
[[nodiscard]] std::string render_prometheus(const MetricsSnapshot& snap);

class MetricsRegistry {
  public:
    /// The process-wide registry every service binds to.
    static MetricsRegistry& instance();

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    // ---- owned metrics (get-or-create; addresses stable forever) ---------

    [[nodiscard]] Counter& counter(const std::string& name,
                                   MetricLabels labels = {});
    [[nodiscard]] Gauge& gauge(const std::string& name,
                               MetricLabels labels = {});
    [[nodiscard]] Histogram& histogram(const std::string& name,
                                       MetricLabels labels = {});

    // ---- bound metrics (non-owning; unbind before the metric dies) ------

    std::uint64_t bind(const std::string& name, MetricLabels labels,
                       const Counter* c);
    std::uint64_t bind(const std::string& name, MetricLabels labels,
                       const Gauge* g);
    std::uint64_t bind(const std::string& name, MetricLabels labels,
                       const Histogram* h);
    std::uint64_t bind(const std::string& name, MetricLabels labels,
                       const Meter* m);
    std::uint64_t bind_callback(const std::string& name, MetricLabels labels,
                                std::function<std::uint64_t()> fn);

    void unbind(std::uint64_t id);

    /// Sample every registered metric. Callback metrics run their
    /// functions here, under the registry lock — keep them cheap.
    [[nodiscard]] MetricsSnapshot snapshot() const;

    /// Registered series count (tests).
    [[nodiscard]] std::size_t size() const;

  private:
    struct Entry {
        std::uint64_t id = 0;
        std::string name;
        MetricLabels labels;
        MetricKind kind = MetricKind::kCounter;
        // Exactly one source is set, matching kind.
        const Counter* counter = nullptr;
        const Gauge* gauge = nullptr;
        const Histogram* histogram = nullptr;
        const Meter* meter = nullptr;
        std::function<std::uint64_t()> callback;
        // Owned metrics keep their storage here (bound ones leave it
        // empty); unique_ptr keeps the address stable across rehashes.
        std::unique_ptr<Counter> owned_counter;
        std::unique_ptr<Gauge> owned_gauge;
        std::unique_ptr<Histogram> owned_histogram;
    };

    /// Map key: name plus rendered labels (one series per combination).
    [[nodiscard]] static std::string key_of(const std::string& name,
                                            const MetricLabels& labels);

    /// Insert \p e under its key, adding an "inst" label on collision.
    /// Returns the entry's id. Callers hold mu_.
    std::uint64_t insert_locked(Entry e);

    mutable std::mutex mu_;  // guards entries_ and next_id_
    std::map<std::string, Entry> entries_;
    std::uint64_t next_id_ = 1;
};

/// RAII batch of bound registrations: owners bind their member metrics
/// through a group declared AFTER those members, so everything unbinds
/// before the metrics destruct. Move-only.
class MetricsGroup {
  public:
    MetricsGroup() : registry_(&MetricsRegistry::instance()) {}
    explicit MetricsGroup(MetricsRegistry& registry)
        : registry_(&registry) {}

    MetricsGroup(MetricsGroup&& other) noexcept
        : registry_(other.registry_), ids_(std::move(other.ids_)) {
        other.ids_.clear();
    }
    MetricsGroup& operator=(MetricsGroup&&) = delete;
    MetricsGroup(const MetricsGroup&) = delete;
    MetricsGroup& operator=(const MetricsGroup&) = delete;

    ~MetricsGroup() { release(); }

    void counter(const std::string& name, MetricLabels labels,
                 const Counter& c) {
        ids_.push_back(registry_->bind(name, std::move(labels), &c));
    }
    void gauge(const std::string& name, MetricLabels labels,
               const Gauge& g) {
        ids_.push_back(registry_->bind(name, std::move(labels), &g));
    }
    void histogram(const std::string& name, MetricLabels labels,
                   const Histogram& h) {
        ids_.push_back(registry_->bind(name, std::move(labels), &h));
    }
    void meter(const std::string& name, MetricLabels labels,
               const Meter& m) {
        ids_.push_back(registry_->bind(name, std::move(labels), &m));
    }
    void callback(const std::string& name, MetricLabels labels,
                  std::function<std::uint64_t()> fn) {
        ids_.push_back(
            registry_->bind_callback(name, std::move(labels), std::move(fn)));
    }

    /// Unbind everything now (also called by the destructor).
    void release() noexcept {
        for (const std::uint64_t id : ids_) {
            registry_->unbind(id);
        }
        ids_.clear();
    }

  private:
    MetricsRegistry* registry_;
    std::vector<std::uint64_t> ids_;
};

/// Bind the four ServiceStats counters plus the latency histogram under
/// the canonical rpc_service_* names.
inline void bind_service_stats(MetricsGroup& group, const ServiceStats& s,
                               MetricLabels labels) {
    group.counter("rpc_service_ops_total", labels, s.ops);
    group.counter("rpc_service_bytes_in_total", labels, s.bytes_in);
    group.counter("rpc_service_bytes_out_total", labels, s.bytes_out);
    group.counter("rpc_service_errors_total", labels, s.errors);
    group.histogram("rpc_service_latency_us", std::move(labels),
                    s.latency_us);
}

}  // namespace blobseer
