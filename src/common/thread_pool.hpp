/// \file thread_pool.hpp
/// \brief Fixed-size worker pool with future-returning submission and a
///        blocking parallel-for helper.
///
/// Clients use the pool to overlap chunk transfers to many providers
/// (Section I-B.3 of the paper: writers "send their chunks to the storage
/// space providers independently of each other"). Per Core Guidelines CP.4
/// callers think in tasks; threads are an implementation detail owned by
/// this class (CP.25-style joining on destruction).

#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace blobseer {

class ThreadPool {
  public:
    /// Spawn \p n_threads workers. n_threads must be >= 1.
    explicit ThreadPool(std::size_t n_threads) {
        if (n_threads == 0) {
            throw std::invalid_argument("ThreadPool needs >= 1 thread");
        }
        workers_.reserve(n_threads);
        for (std::size_t i = 0; i < n_threads; ++i) {
            workers_.emplace_back([this] { worker_loop(); });
        }
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool() {
        {
            const std::scoped_lock lock(mu_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (auto& w : workers_) {
            w.join();
        }
    }

    /// Number of worker threads.
    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Tasks queued but not yet picked up by a worker (the metrics
    /// registry samples this as a backlog gauge).
    [[nodiscard]] std::size_t backlog() const {
        const std::scoped_lock lock(mu_);
        return queue_.size();
    }

    /// Fire-and-forget submission: no future, no packaged_task wrapper —
    /// the per-task cost is one queue node. The task must not throw
    /// (worker threads have nowhere to put the exception).
    void post(std::function<void()> fn) {
        {
            const std::scoped_lock lock(mu_);
            if (stopping_) {
                throw std::runtime_error("post on stopped ThreadPool");
            }
            queue_.push_back(std::move(fn));
        }
        cv_.notify_one();
    }

    /// Submit a task; the returned future carries its result or exception.
    template <typename F>
    auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
        using R = std::invoke_result_t<F>;
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        {
            const std::scoped_lock lock(mu_);
            if (stopping_) {
                throw std::runtime_error("submit on stopped ThreadPool");
            }
            queue_.emplace_back([task]() mutable { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /// Run fn(i) for every i in [0, n) on the pool and wait for all of
    /// them. The first exception (if any) is rethrown on the caller —
    /// but only after EVERY task finished: tasks reference the caller's
    /// stack through \p fn, so unwinding early would leave running tasks
    /// with dangling captures.
    template <typename F>
    void parallel_for(std::size_t n, F&& fn) {
        std::vector<std::future<void>> futs;
        futs.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            futs.push_back(submit([&fn, i] { fn(i); }));
        }
        std::exception_ptr first;
        for (auto& f : futs) {
            try {
                f.get();
            } catch (...) {
                if (!first) {
                    first = std::current_exception();
                }
            }
        }
        if (first) {
            std::rethrow_exception(first);
        }
    }

  private:
    void worker_loop() {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock lock(mu_);
                cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
                if (stopping_ && queue_.empty()) {
                    return;
                }
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            task();
        }
    }

    // mu_ guards queue_ and stopping_ (CP.50: mutex lives with its data).
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

}  // namespace blobseer
