/// \file buffer.hpp
/// \brief Byte buffers plus deterministic content patterns.
///
/// Tests and experiments need to verify end-to-end reads without keeping a
/// second copy of everything that was written. The pattern functions below
/// make every byte of every (blob, version, offset) combination a pure
/// function of its coordinates, so a reader can check arbitrary slices of
/// arbitrary snapshots in O(size) with O(1) memory.

#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace blobseer {

/// Owned byte buffer. A plain vector is the right tool: contiguous,
/// movable, and `std::span`-convertible at API boundaries.
using Buffer = std::vector<std::uint8_t>;

/// Read-only view over bytes.
using ConstBytes = std::span<const std::uint8_t>;

/// Mutable view over bytes.
using MutableBytes = std::span<std::uint8_t>;

/// Borrowed bytes with shared ownership of whatever keeps them alive.
///
/// The dispatcher→transport seam passes these instead of copying payloads
/// into response frames: `bytes` may point into an mmap'd log segment, a
/// shared ChunkData buffer, or any other region whose lifetime `owner`
/// extends. An empty slice with a null owner is the natural "no tail"
/// state. The view is immutable; whoever holds the slice may read `bytes`
/// for as long as they hold `owner`.
struct SharedSlice {
    ConstBytes bytes{};
    std::shared_ptr<const void> owner{};

    SharedSlice() = default;
    SharedSlice(ConstBytes b, std::shared_ptr<const void> o) noexcept
        : bytes(b), owner(std::move(o)) {}

    /// Wrap an owned buffer as a slice over its whole contents.
    [[nodiscard]] static SharedSlice from_buffer(Buffer b) {
        auto owned = std::make_shared<const Buffer>(std::move(b));
        ConstBytes view(*owned);
        return SharedSlice(view, std::move(owned));
    }

    [[nodiscard]] std::size_t size() const noexcept { return bytes.size(); }
    [[nodiscard]] bool empty() const noexcept { return bytes.empty(); }
};

/// The deterministic content byte for absolute position \p pos of version
/// \p v of blob \p blob. One multiply-mix per 8 bytes when used through
/// fill_pattern; the per-byte form is the reference definition.
[[nodiscard]] inline std::uint8_t pattern_byte(BlobId blob, Version v,
                                               std::uint64_t pos) noexcept {
    const std::uint64_t word =
        mix64(hash_combine(hash_combine(blob, v), pos / 8));
    return static_cast<std::uint8_t>(word >> ((pos % 8) * 8));
}

/// Fill \p out with the deterministic pattern of (blob, v) starting at
/// absolute blob offset \p offset.
inline void fill_pattern(BlobId blob, Version v, std::uint64_t offset,
                         MutableBytes out) noexcept {
    std::size_t i = 0;
    // Head: align to an 8-byte pattern word boundary.
    while (i < out.size() && (offset + i) % 8 != 0) {
        out[i] = pattern_byte(blob, v, offset + i);
        ++i;
    }
    // Body: whole words.
    while (i + 8 <= out.size()) {
        const std::uint64_t pos = offset + i;
        const std::uint64_t word =
            mix64(hash_combine(hash_combine(blob, v), pos / 8));
        std::memcpy(out.data() + i, &word, 8);
        i += 8;
    }
    // Tail.
    while (i < out.size()) {
        out[i] = pattern_byte(blob, v, offset + i);
        ++i;
    }
}

/// Allocate and fill a pattern buffer of \p size bytes.
[[nodiscard]] inline Buffer make_pattern(BlobId blob, Version v,
                                         std::uint64_t offset,
                                         std::size_t size) {
    Buffer b(size);
    fill_pattern(blob, v, offset, b);
    return b;
}

/// Verify that \p data equals the (blob, v) pattern at \p offset. Returns
/// the index of the first mismatching byte, or -1 if all bytes match.
[[nodiscard]] inline std::int64_t verify_pattern(BlobId blob, Version v,
                                                 std::uint64_t offset,
                                                 ConstBytes data) noexcept {
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (data[i] != pattern_byte(blob, v, offset + i)) {
            return static_cast<std::int64_t>(i);
        }
    }
    return -1;
}

}  // namespace blobseer
