/// \file clock.hpp
/// \brief Time utilities: the cluster-wide clock type and a stopwatch.

#pragma once

#include <chrono>
#include <cstdint>

namespace blobseer {

/// All timing in BlobSeer uses the steady clock — wall-clock jumps must not
/// perturb bandwidth gates or experiment measurements.
using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Duration = Clock::duration;

using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::nanoseconds;
using std::chrono::seconds;

/// Simple RAII-free stopwatch for measurement loops.
class Stopwatch {
  public:
    Stopwatch() : start_(Clock::now()) {}

    void restart() { start_ = Clock::now(); }

    [[nodiscard]] Duration elapsed() const { return Clock::now() - start_; }

    [[nodiscard]] double elapsed_seconds() const {
        return std::chrono::duration<double>(elapsed()).count();
    }

    [[nodiscard]] std::uint64_t elapsed_us() const {
        return static_cast<std::uint64_t>(
            duration_cast<microseconds>(elapsed()).count());
    }

  private:
    TimePoint start_;
};

}  // namespace blobseer
