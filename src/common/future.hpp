/// \file future.hpp
/// \brief Minimal vendored future/promise pair for asynchronous RPC.
///
/// std::future is the wrong tool here: std::async spawns threads we do
/// not control, shared_future copies values, and neither offers a
/// completion hook — which the RPC layer needs to decode a response
/// frame the moment the transport's reader thread matches it. This pair
/// is the small subset the codebase actually uses:
///
///  * Promise<T>::set_value / set_exception, single-shot;
///  * Future<T>::get() (blocking, move-out, rethrow), wait(), ready();
///  * Future<T>::on_ready(fn) — run fn on the completing thread (or
///    inline when already complete); used only for lightweight work
///    such as decoding a frame or notifying a window;
///  * map_future<T>(src, fn) — the decode adapter client stubs use to
///    turn Future<Buffer> into Future<ChunkSlice> etc.
///
/// A Promise abandoned before fulfilment fails its Future with
/// RpcError("broken promise") instead of blocking a waiter forever —
/// exactly the surface a dying transport connection must present.

#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace blobseer {

namespace detail {

/// Internal stand-in value so Future<void> shares the generic state.
struct Unit {};

template <typename T>
using future_storage_t = std::conditional_t<std::is_void_v<T>, Unit, T>;

template <typename S>
class FutureState {
  public:
    void set_value(S value) {
        std::vector<std::function<void()>> callbacks;
        {
            const std::scoped_lock lock(mu_);
            if (ready_) {
                throw Error("promise already satisfied");
            }
            value_.emplace(std::move(value));
            ready_ = true;
            callbacks.swap(callbacks_);
        }
        cv_.notify_all();
        for (auto& fn : callbacks) {
            fn();
        }
    }

    void set_exception(std::exception_ptr e) {
        std::vector<std::function<void()>> callbacks;
        {
            const std::scoped_lock lock(mu_);
            if (ready_) {
                throw Error("promise already satisfied");
            }
            error_ = std::move(e);
            ready_ = true;
            callbacks.swap(callbacks_);
        }
        cv_.notify_all();
        for (auto& fn : callbacks) {
            fn();
        }
    }

    /// Abandonment path (promise destroyed unfulfilled): never throws.
    void abandon() noexcept {
        try {
            set_exception(std::make_exception_ptr(
                RpcError("broken promise: asynchronous operation "
                         "abandoned before completion")));
        } catch (const Error&) {
            // Already satisfied — nothing to do.
        }
    }

    [[nodiscard]] S get() {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [this] { return ready_; });
        if (error_ != nullptr) {
            std::rethrow_exception(error_);
        }
        if (!value_.has_value()) {
            throw Error("future value already consumed");
        }
        S out = std::move(*value_);
        value_.reset();
        return out;
    }

    void wait() const {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [this] { return ready_; });
    }

    [[nodiscard]] bool ready() const {
        const std::scoped_lock lock(mu_);
        return ready_;
    }

    void on_ready(std::function<void()> fn) {
        {
            const std::scoped_lock lock(mu_);
            if (!ready_) {
                callbacks_.push_back(std::move(fn));
                return;
            }
        }
        fn();  // already complete: run inline on the caller
    }

  private:
    mutable std::mutex mu_;  // guards everything below
    mutable std::condition_variable cv_;
    bool ready_ = false;
    std::optional<S> value_;
    std::exception_ptr error_;
    std::vector<std::function<void()>> callbacks_;
};

}  // namespace detail

template <typename T>
class Promise;

/// Shared-ownership handle on an eventual T (or exception). Copies view
/// the same state; the value itself is single-consumer — get() moves it
/// out and a second get() throws.
template <typename T>
class Future {
    using S = detail::future_storage_t<T>;

  public:
    Future() = default;

    /// True when this handle is bound to an operation at all.
    [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

    /// True once a value or exception is set (get() will not block).
    [[nodiscard]] bool ready() const { return state_->ready(); }

    /// Block until complete without consuming the result.
    void wait() const { state_->wait(); }

    /// Block until complete; return the value or rethrow the exception.
    T get() {
        if constexpr (std::is_void_v<T>) {
            (void)state_->get();
        } else {
            return state_->get();
        }
    }

    /// Run \p fn when the future completes — on the completing thread,
    /// or inline right now if it already did. \p fn must be lightweight
    /// and must not block: transports complete futures from their
    /// reader threads.
    void on_ready(std::function<void()> fn) {
        state_->on_ready(std::move(fn));
    }

  private:
    friend class Promise<T>;
    explicit Future(std::shared_ptr<detail::FutureState<S>> state)
        : state_(std::move(state)) {}

    std::shared_ptr<detail::FutureState<S>> state_;
};

/// Single-shot producer side. Move-only; destroying an unfulfilled
/// promise fails its future with RpcError ("broken promise").
template <typename T>
class Promise {
    using S = detail::future_storage_t<T>;

  public:
    Promise() : state_(std::make_shared<detail::FutureState<S>>()) {}

    Promise(Promise&& other) noexcept = default;
    Promise& operator=(Promise&& other) noexcept {
        if (this != &other) {
            if (state_ != nullptr) {
                state_->abandon();
            }
            state_ = std::move(other.state_);
        }
        return *this;
    }

    Promise(const Promise&) = delete;
    Promise& operator=(const Promise&) = delete;

    ~Promise() {
        if (state_ != nullptr) {
            state_->abandon();
        }
    }

    [[nodiscard]] Future<T> future() { return Future<T>(state_); }

    template <typename U = T>
        requires(!std::is_void_v<U>)
    void set_value(U value) {
        state_->set_value(std::move(value));
        state_.reset();
    }

    void set_value()
        requires std::is_void_v<T>
    {
        state_->set_value(detail::Unit{});
        state_.reset();
    }

    void set_exception(std::exception_ptr e) {
        state_->set_exception(std::move(e));
        state_.reset();
    }

  private:
    std::shared_ptr<detail::FutureState<S>> state_;
};

/// Adapter: a Future<T> fulfilled by running \p fn on \p src's value the
/// moment \p src completes (on the completing thread). An exception from
/// \p fn — or from \p src itself — becomes the result's exception. This
/// is how client stubs decode response frames without blocking a thread
/// per call.
template <typename T, typename U, typename F>
[[nodiscard]] Future<T> map_future(Future<U> src, F fn) {
    auto promise = std::make_shared<Promise<T>>();
    Future<T> out = promise->future();
    Future<U> watched = src;  // keep a handle the callback can consume
    src.on_ready([watched, promise, fn = std::move(fn)]() mutable {
        try {
            if constexpr (std::is_void_v<T>) {
                fn(watched.get());
                promise->set_value();
            } else {
                promise->set_value(fn(watched.get()));
            }
        } catch (...) {
            promise->set_exception(std::current_exception());
        }
    });
    return out;
}

}  // namespace blobseer
