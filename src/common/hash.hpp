/// \file hash.hpp
/// \brief Stable 64-bit hashing used for DHT key placement and content
///        fingerprints.
///
/// The hash must be stable across runs (placement determinism makes tests
/// and experiments reproducible), so std::hash — whose value is unspecified
/// — is not used. FNV-1a with an avalanche finalizer is cheap and good
/// enough for consistent-hashing key spreading.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace blobseer {

/// FNV-1a over raw bytes, finalized with a splitmix64-style avalanche so
/// that near-identical inputs (sequential ids) spread over the full ring.
[[nodiscard]] constexpr std::uint64_t fnv1a64(const char* data,
                                              std::size_t n) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 0x100000001b3ULL;
    }
    // splitmix64 finalizer
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
}

[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view s) noexcept {
    return fnv1a64(s.data(), s.size());
}

[[nodiscard]] inline std::uint64_t fnv1a64(
    std::span<const std::uint8_t> bytes) noexcept {
    return fnv1a64(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

/// Mix a single 64-bit value (splitmix64 finalizer). Used to hash integer
/// keys without serializing them to strings.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t h) noexcept {
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
}

/// Combine two hashes (boost::hash_combine style, 64-bit constant).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
    return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace blobseer
