#include "cache/compressed_file_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/error.hpp"
#include "engine/crc32c.hpp"
#include "engine/format.hpp"

namespace blobseer::cache {

namespace {

[[nodiscard]] std::filesystem::path file_path(const std::filesystem::path& dir,
                                              std::uint64_t id) {
    char name[32];
    std::snprintf(name, sizeof name, "cache-%010llu.dat",
                  static_cast<unsigned long long>(id));
    return dir / name;
}

}  // namespace

CompressedFileCache::CompressedFileCache(FileCacheConfig cfg)
    : cfg_(std::move(cfg)) {
    std::error_code ec;
    std::filesystem::remove_all(cfg_.dir, ec);  // disposable: never reuse
    std::filesystem::create_directories(cfg_.dir, ec);
    {
        const std::scoped_lock lock(mu_);
        (void)open_active_locked();
    }
    const MetricLabels labels{{"dir", cfg_.dir.string()}};
    metrics_.counter("file_cache_hits_total", labels, hits_);
    metrics_.counter("file_cache_misses_total", labels, misses_);
    metrics_.counter("file_cache_insertions_total", labels, insertions_);
    metrics_.counter("file_cache_evictions_total", labels, evictions_);
    metrics_.counter("file_cache_crc_failures_total", labels, crc_failures_);
    metrics_.counter("file_cache_io_errors_total", labels, io_errors_);
    metrics_.callback("file_cache_entries", labels,
                      [this] { return static_cast<std::uint64_t>(entries()); });
    metrics_.callback("file_cache_stored_bytes", labels,
                      [this] { return stored_bytes(); });
    metrics_.callback("file_cache_raw_bytes", labels,
                      [this] { return raw_bytes(); });
    metrics_.callback("file_cache_physical_bytes", labels,
                      [this] { return physical_bytes(); });
}

bool CompressedFileCache::open_active_locked() {
    std::error_code ec;
    std::filesystem::create_directories(cfg_.dir, ec);  // may have been rm'd
    const std::uint64_t id = next_file_id_++;
    try {
        auto file = engine::SegmentFile::open(file_path(cfg_.dir, id), true);
        files_[id] = CacheFile{std::move(file), 0};
        active_file_id_ = id;
        return true;
    } catch (const Error&) {
        io_errors_.add();
        active_file_id_ = 0;
        return false;
    }
}

void CompressedFileCache::release_entry_locked(const FileLocation& loc) {
    const auto it = files_.find(loc.file_id);
    if (it == files_.end()) {
        return;
    }
    if (it->second.live_entries > 0) {
        --it->second.live_entries;
    }
    if (it->second.live_entries == 0 && loc.file_id != active_file_id_) {
        std::error_code ec;
        std::filesystem::remove(it->second.file->path(), ec);
        files_.erase(it);
    }
}

std::uint64_t CompressedFileCache::physical_bytes_locked() const {
    std::uint64_t total = 0;
    for (const auto& [id, f] : files_) {
        total += f.file->size();
    }
    return total;
}

void CompressedFileCache::enforce_budgets_locked() {
    if (cfg_.budget_bytes != 0) {
        while (index_.stored_bytes() > cfg_.budget_bytes) {
            auto victim = index_.pop_lru();
            if (!victim) {
                break;
            }
            release_entry_locked(victim->loc);
            evictions_.add();
        }
    }
    // Physical bound: logical eviction only reclaims a file when it
    // drains completely, so scattered survivors can pin disk space.
    // Retire whole cold files (oldest first) past 2x(budget + one file).
    if (cfg_.budget_bytes != 0) {
        const std::uint64_t physical_limit =
            2 * (cfg_.budget_bytes + cfg_.file_target_bytes);
        while (files_.size() > 1 && physical_bytes_locked() > physical_limit) {
            const auto it = files_.begin();
            if (it->first == active_file_id_) {
                break;
            }
            const std::size_t dropped = index_.erase_file(it->first);
            evictions_.add(dropped);
            std::error_code ec;
            std::filesystem::remove(it->second.file->path(), ec);
            files_.erase(it);
        }
    }
}

void CompressedFileCache::put(const std::string& key, ConstBytes raw) {
    const Buffer frame = codec::encode_frame(codec_, raw);
    if (key.size() > engine::kMaxKeyLen || raw.size() > engine::kMaxValueLen) {
        return;
    }
    if (cfg_.budget_bytes != 0 && frame.size() > cfg_.budget_bytes) {
        return;  // would evict the whole cache for one entry
    }
    Buffer entry;
    entry.reserve(kEntryHeaderSize + key.size() + frame.size());
    engine::put_u32(entry, 0);  // CRC placeholder
    engine::put_u32(entry, static_cast<std::uint32_t>(key.size()));
    engine::put_u32(entry, static_cast<std::uint32_t>(raw.size()));
    engine::put_u32(entry, static_cast<std::uint32_t>(frame.size()));
    entry.insert(entry.end(), key.begin(), key.end());
    entry.insert(entry.end(), frame.begin(), frame.end());
    engine::poke_u32(entry, 0,
                     engine::crc32c(ConstBytes(entry).subspan(4)));

    const std::scoped_lock lock(mu_);
    if (index_.contains(key)) {
        (void)index_.find(key, /*touch=*/true);  // freshen recency only
        return;
    }
    if (active_file_id_ == 0 && !open_active_locked()) {
        return;
    }
    auto& active = files_.at(active_file_id_);
    std::uint64_t offset = 0;
    try {
        offset = active.file->append(entry);
    } catch (const Error&) {
        // The active file is suspect (disk full, deleted dir + stale fd
        // errors, ...): count it, retire the file, recover on next put.
        io_errors_.add();
        if (active.live_entries == 0) {
            std::error_code ec;
            std::filesystem::remove(active.file->path(), ec);
            files_.erase(active_file_id_);
        }
        active_file_id_ = 0;
        return;
    }
    active.live_entries++;
    index_.insert(key, FileLocation{active_file_id_, offset,
                                    static_cast<std::uint32_t>(raw.size()),
                                    static_cast<std::uint32_t>(frame.size())});
    insertions_.add();
    if (active.file->size() >= cfg_.file_target_bytes) {
        (void)open_active_locked();  // rotate; old file drains via LRU
    }
    enforce_budgets_locked();
}

std::optional<Buffer> CompressedFileCache::get(const std::string& key) {
    std::shared_ptr<engine::SegmentFile> file;
    FileLocation loc;
    {
        const std::scoped_lock lock(mu_);
        const auto found = index_.find(key, /*touch=*/true);
        if (!found) {
            misses_.add();
            return std::nullopt;
        }
        loc = *found;
        const auto it = files_.find(loc.file_id);
        if (it == files_.end()) {
            (void)index_.erase(key);
            misses_.add();
            return std::nullopt;
        }
        file = it->second.file;
    }

    // Read + verify outside the lock; the shared_ptr keeps the fd (and
    // therefore the inode, even if unlinked) alive.
    const std::size_t entry_size =
        kEntryHeaderSize + key.size() + loc.stored_len;
    Buffer entry(entry_size);
    bool ok = false;
    try {
        ok = file->read_exact(loc.offset, entry);
    } catch (const Error&) {
        ok = false;
    }
    if (ok) {
        const ConstBytes bytes(entry);
        ok = engine::get_u32(bytes, 0) == engine::crc32c(bytes.subspan(4)) &&
             engine::get_u32(bytes, 4) == key.size() &&
             engine::get_u32(bytes, 8) == loc.raw_len &&
             engine::get_u32(bytes, 12) == loc.stored_len &&
             // Compare as unsigned bytes: char is signed here, and a key
             // byte >= 0x80 must not read as a mismatch.
             std::equal(key.begin(), key.end(),
                        entry.begin() + kEntryHeaderSize,
                        [](char a, std::uint8_t b) {
                            return static_cast<std::uint8_t>(a) == b;
                        });
    }
    std::optional<Buffer> raw;
    if (ok) {
        try {
            raw = codec::decode_frame(
                codec_,
                ConstBytes(entry).subspan(kEntryHeaderSize + key.size()));
            if (raw->size() != loc.raw_len) {
                raw.reset();
            }
        } catch (const Error&) {
            raw.reset();
        }
    }
    if (!raw) {
        // Corrupt or unreadable: drop the entry so the caller's miss
        // falls through to the durable tier, and never trips again.
        const std::scoped_lock lock(mu_);
        if (const auto cur = index_.find(key, /*touch=*/false);
            cur && cur->file_id == loc.file_id &&
            cur->offset == loc.offset) {
            (void)index_.erase(key);
            release_entry_locked(loc);
        }
        crc_failures_.add();
        misses_.add();
        return std::nullopt;
    }
    hits_.add();
    return raw;
}

bool CompressedFileCache::contains(const std::string& key) {
    const std::scoped_lock lock(mu_);
    return index_.contains(key);
}

void CompressedFileCache::erase(const std::string& key) {
    const std::scoped_lock lock(mu_);
    if (const auto loc = index_.erase(key)) {
        release_entry_locked(*loc);
    }
}

void CompressedFileCache::clear() {
    const std::scoped_lock lock(mu_);
    index_.clear();
    for (auto& [id, f] : files_) {
        std::error_code ec;
        std::filesystem::remove(f.file->path(), ec);
    }
    files_.clear();
    active_file_id_ = 0;
    (void)open_active_locked();
}

std::size_t CompressedFileCache::entries() {
    const std::scoped_lock lock(mu_);
    return index_.size();
}

std::uint64_t CompressedFileCache::stored_bytes() {
    const std::scoped_lock lock(mu_);
    return index_.stored_bytes();
}

std::uint64_t CompressedFileCache::raw_bytes() {
    const std::scoped_lock lock(mu_);
    return index_.raw_bytes();
}

std::uint64_t CompressedFileCache::physical_bytes() {
    const std::scoped_lock lock(mu_);
    return physical_bytes_locked();
}

std::size_t CompressedFileCache::file_count() {
    const std::scoped_lock lock(mu_);
    return files_.size();
}

}  // namespace blobseer::cache
