/// \file lru_file_index.hpp
/// \brief In-memory index of the compressed file cache.
///
/// Maps a key to where its compressed bytes live on disk — (file id,
/// offset, raw size, stored size) — and keeps the recency order plus the
/// byte accounting needed for budget-driven eviction. The index is the
/// ONLY authority over what the cache holds: it is never persisted, so a
/// restart (or a deleted cache directory) simply starts empty and the
/// cache rebuilds from demotions — the "recovery-free" half of the
/// cache's disposability contract (DESIGN.md §14.2).
///
/// Not thread-safe; CompressedFileCache wraps it with its mutex.

#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace blobseer::cache {

/// Where one cached value lives on disk.
struct FileLocation {
    std::uint64_t file_id = 0;  ///< cache-<id>.dat
    std::uint64_t offset = 0;   ///< entry start within that file
    std::uint32_t raw_len = 0;  ///< value size before compression
    std::uint32_t stored_len = 0;  ///< framed (compressed) payload size
};

class LruFileIndex {
  public:
    struct Entry {
        std::string key;
        FileLocation loc;
    };

    /// Insert or refresh \p key at the front of the recency order.
    void insert(const std::string& key, const FileLocation& loc) {
        if (const auto it = map_.find(key); it != map_.end()) {
            stored_bytes_ -= it->second->loc.stored_len;
            raw_bytes_ -= it->second->loc.raw_len;
            it->second->loc = loc;
            lru_.splice(lru_.begin(), lru_, it->second);
        } else {
            lru_.push_front(Entry{key, loc});
            map_[key] = lru_.begin();
        }
        stored_bytes_ += loc.stored_len;
        raw_bytes_ += loc.raw_len;
    }

    /// Look up \p key, optionally marking it most-recently-used.
    [[nodiscard]] std::optional<FileLocation> find(const std::string& key,
                                                   bool touch) {
        const auto it = map_.find(key);
        if (it == map_.end()) {
            return std::nullopt;
        }
        if (touch) {
            lru_.splice(lru_.begin(), lru_, it->second);
        }
        return it->second->loc;
    }

    [[nodiscard]] bool contains(const std::string& key) const {
        return map_.contains(key);
    }

    /// Drop \p key; returns its location if it was present.
    std::optional<FileLocation> erase(const std::string& key) {
        const auto it = map_.find(key);
        if (it == map_.end()) {
            return std::nullopt;
        }
        const FileLocation loc = it->second->loc;
        stored_bytes_ -= loc.stored_len;
        raw_bytes_ -= loc.raw_len;
        lru_.erase(it->second);
        map_.erase(it);
        return loc;
    }

    /// Evict the least-recently-used entry; nullopt when empty.
    std::optional<Entry> pop_lru() {
        if (lru_.empty()) {
            return std::nullopt;
        }
        Entry victim = std::move(lru_.back());
        stored_bytes_ -= victim.loc.stored_len;
        raw_bytes_ -= victim.loc.raw_len;
        map_.erase(victim.key);
        lru_.pop_back();
        return victim;
    }

    /// Drop every entry whose bytes live in file \p file_id (used when a
    /// whole cache file is retired to bound physical disk usage).
    /// Returns how many entries were dropped.
    std::size_t erase_file(std::uint64_t file_id) {
        std::size_t dropped = 0;
        for (auto it = lru_.begin(); it != lru_.end();) {
            if (it->loc.file_id == file_id) {
                stored_bytes_ -= it->loc.stored_len;
                raw_bytes_ -= it->loc.raw_len;
                map_.erase(it->key);
                it = lru_.erase(it);
                ++dropped;
            } else {
                ++it;
            }
        }
        return dropped;
    }

    void clear() {
        lru_.clear();
        map_.clear();
        stored_bytes_ = 0;
        raw_bytes_ = 0;
    }

    [[nodiscard]] std::size_t size() const { return map_.size(); }
    /// Live compressed bytes (what the budget is charged against).
    [[nodiscard]] std::uint64_t stored_bytes() const { return stored_bytes_; }
    /// Live pre-compression bytes (for the compression-ratio gauge).
    [[nodiscard]] std::uint64_t raw_bytes() const { return raw_bytes_; }

  private:
    std::list<Entry> lru_;  // front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> map_;
    std::uint64_t stored_bytes_ = 0;
    std::uint64_t raw_bytes_ = 0;
};

}  // namespace blobseer::cache
