/// \file compressed_file_cache.hpp
/// \brief On-disk LRU of compressed values: the middle storage tier.
///
/// Sits between the RAM cache and the log engine (DESIGN.md §14): values
/// evicted from RAM are *demoted* here in compressed form, and a hit
/// *promotes* them back. Entries are appended to bounded cache-<id>.dat
/// files as
///
///   [crc32c u32 | klen u32 | raw_len u32 | stored_len u32 | key | frame]
///
/// where `frame` is the codec-framed (possibly passthrough) value and the
/// CRC covers every byte after itself. The in-memory LruFileIndex is the
/// only record of what lives where — nothing is ever recovered from disk,
/// which makes the cache fully disposable: corrupt entries (CRC or codec
/// failure), missing files, even `rm -rf` of the whole directory just
/// turn hits into misses that fall through to the durable engine. Write
/// errors are swallowed and counted for the same reason: a cache that
/// cannot write is merely a smaller cache.
///
/// Eviction is byte-budgeted on *live compressed* bytes. Files are
/// append-only, so eviction is logical; a file's disk space is reclaimed
/// when its last live entry goes, and a physical bound (budget +
/// one file target, doubled) retires whole cold files early if logical
/// garbage accumulates faster than files drain.

#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "cache/lru_file_index.hpp"
#include "codec/lz4.hpp"
#include "common/buffer.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "engine/segment_file.hpp"

namespace blobseer::cache {

struct FileCacheConfig {
    std::filesystem::path dir;
    /// Max live compressed bytes; 0 = unlimited.
    std::uint64_t budget_bytes = 256ULL << 20;
    /// Rotate to a new cache file once the active one reaches this size.
    std::uint64_t file_target_bytes = 8ULL << 20;
};

class CompressedFileCache {
  public:
    /// Wipes and recreates cfg.dir: the cache never trusts leftover
    /// files (there is no on-disk index to interpret them with).
    explicit CompressedFileCache(FileCacheConfig cfg);

    CompressedFileCache(const CompressedFileCache&) = delete;
    CompressedFileCache& operator=(const CompressedFileCache&) = delete;

    /// Insert \p raw under \p key (compressing if it helps). Best-effort:
    /// I/O failures are counted, not thrown. A key already present is
    /// only freshened in recency — callers erase() before re-putting a
    /// key whose bytes changed.
    void put(const std::string& key, ConstBytes raw);

    /// Fetch and decompress \p key. Any integrity failure (CRC, codec,
    /// size mismatch, short read) silently drops the entry and returns
    /// nullopt so the caller falls through to the durable tier.
    [[nodiscard]] std::optional<Buffer> get(const std::string& key);

    [[nodiscard]] bool contains(const std::string& key);

    void erase(const std::string& key);

    /// Forget everything and start over with an empty directory — what a
    /// process restart does implicitly (the index is never persisted).
    void clear();

    // ---- observability ----------------------------------------------------

    [[nodiscard]] std::size_t entries();
    [[nodiscard]] std::uint64_t stored_bytes();    ///< live compressed
    [[nodiscard]] std::uint64_t raw_bytes();       ///< live pre-compression
    [[nodiscard]] std::uint64_t physical_bytes();  ///< on-disk file bytes
    [[nodiscard]] std::size_t file_count();

    [[nodiscard]] std::uint64_t hits() const { return hits_.get(); }
    [[nodiscard]] std::uint64_t misses() const { return misses_.get(); }
    [[nodiscard]] std::uint64_t insertions() const {
        return insertions_.get();
    }
    [[nodiscard]] std::uint64_t evictions() const { return evictions_.get(); }
    [[nodiscard]] std::uint64_t crc_failures() const {
        return crc_failures_.get();
    }
    [[nodiscard]] std::uint64_t io_errors() const { return io_errors_.get(); }

    [[nodiscard]] const std::filesystem::path& dir() const {
        return cfg_.dir;
    }

  private:
    /// [crc | klen | raw_len | stored_len] prefix of every entry.
    static constexpr std::size_t kEntryHeaderSize = 16;

    struct CacheFile {
        std::shared_ptr<engine::SegmentFile> file;
        std::size_t live_entries = 0;
    };

    /// Open a fresh active file, recreating the directory if it was
    /// deleted out from under us. Returns false (and counts an I/O
    /// error) if even that fails.
    bool open_active_locked();
    /// Drop one live entry's accounting from its file and retire the
    /// file when it drains (callers hold mu_).
    void release_entry_locked(const FileLocation& loc);
    /// Enforce the live-byte budget and the physical bound.
    void enforce_budgets_locked();
    [[nodiscard]] std::uint64_t physical_bytes_locked() const;

    const FileCacheConfig cfg_;
    const codec::Lz4Codec codec_;

    std::mutex mu_;  // guards index_, files_, active_*, next_file_id_
    LruFileIndex index_;
    std::map<std::uint64_t, CacheFile> files_;  // ordered: oldest first
    std::uint64_t next_file_id_ = 1;
    std::uint64_t active_file_id_ = 0;  // 0 = none (open failed)

    Counter hits_;
    Counter misses_;
    Counter insertions_;
    Counter evictions_;
    Counter crc_failures_;
    Counter io_errors_;

    MetricsGroup metrics_;  // declared last: unbinds before members die
};

}  // namespace blobseer::cache
