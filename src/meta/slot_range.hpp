/// \file slot_range.hpp
/// \brief Chunk-slot range algebra for the versioned segment tree.
///
/// The metadata tree (paper §I-B.3 "Metadata decentralization") is a binary
/// segment tree over *chunk slots*: slot i covers blob bytes
/// [i*chunk_size, (i+1)*chunk_size). Every tree node covers a
/// power-of-two-sized, alignment-respecting slot range; leaves cover
/// exactly one slot. Working in slots rather than bytes keeps the
/// power-of-two arithmetic exact.

#pragma once

#include <cassert>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace blobseer::meta {

/// [first, first + count) in chunk-slot units. Invariants for tree nodes:
/// count is a power of two and first % count == 0.
struct SlotRange {
    std::uint64_t first = 0;
    std::uint64_t count = 0;

    [[nodiscard]] std::uint64_t end() const noexcept { return first + count; }
    [[nodiscard]] bool empty() const noexcept { return count == 0; }
    [[nodiscard]] bool is_leaf() const noexcept { return count == 1; }

    [[nodiscard]] bool intersects(const SlotRange& o) const noexcept {
        return first < o.end() && o.first < end();
    }

    [[nodiscard]] bool contains(const SlotRange& o) const noexcept {
        return first <= o.first && o.end() <= end();
    }

    /// Left half of an inner node's range.
    [[nodiscard]] SlotRange left() const noexcept {
        assert(count >= 2);
        return {first, count / 2};
    }

    /// Right half of an inner node's range.
    [[nodiscard]] SlotRange right() const noexcept {
        assert(count >= 2);
        return {first + count / 2, count / 2};
    }

    /// True iff this is a well-formed tree-node range.
    [[nodiscard]] bool aligned() const noexcept {
        return count > 0 && is_pow2(count) && first % count == 0;
    }

    friend bool operator==(const SlotRange&, const SlotRange&) = default;

    [[nodiscard]] std::string to_string() const {
        // Built by append: the operator+ chain trips a GCC 12 -Wrestrict
        // false positive under -Werror at some inlining depths.
        std::string s;
        s.reserve(24);
        s += '[';
        s += std::to_string(first);
        s += ',';
        s += std::to_string(end());
        s += ')';
        return s;
    }
};

/// Geometry of one blob's trees: converts byte coordinates to slot
/// coordinates. The chunk size is fixed at blob creation (paper §I-B.3:
/// "chunks of a fixed size which is specified at the time the blob is
/// created").
class TreeGeometry {
  public:
    explicit TreeGeometry(std::uint64_t chunk_size)
        : chunk_size_(chunk_size) {
        assert(chunk_size > 0);
    }

    [[nodiscard]] std::uint64_t chunk_size() const noexcept {
        return chunk_size_;
    }

    /// Number of slots needed to hold \p bytes (not rounded to pow2).
    [[nodiscard]] std::uint64_t slots_for(std::uint64_t bytes) const noexcept {
        return ceil_div(bytes, chunk_size_);
    }

    /// Slot capacity of the tree for a blob of \p bytes: the smallest
    /// power of two covering all used slots; 0 for an empty blob (no tree).
    [[nodiscard]] std::uint64_t tree_slots(std::uint64_t bytes) const noexcept {
        const std::uint64_t used = slots_for(bytes);
        return used == 0 ? 0 : pow2_ceil(used);
    }

    /// Root range of the tree for a blob of \p bytes.
    [[nodiscard]] SlotRange root_range(std::uint64_t bytes) const noexcept {
        return {0, tree_slots(bytes)};
    }

    /// Slot range touched by the byte range [offset, offset+size).
    [[nodiscard]] SlotRange slots_of(const ByteRange& r) const noexcept {
        if (r.size == 0) {
            return {r.offset / chunk_size_, 0};
        }
        const std::uint64_t first = r.offset / chunk_size_;
        const std::uint64_t last = (r.end() - 1) / chunk_size_;
        return {first, last - first + 1};
    }

    /// Byte range covered by slot \p slot.
    [[nodiscard]] ByteRange bytes_of_slot(std::uint64_t slot) const noexcept {
        return {slot * chunk_size_, chunk_size_};
    }

  private:
    std::uint64_t chunk_size_;
};

}  // namespace blobseer::meta
