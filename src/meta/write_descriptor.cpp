#include "meta/write_descriptor.hpp"

namespace blobseer::meta {

namespace {

void collect(const WriteDescriptor& w, const TreeGeometry& geo,
             const SlotRange& r, std::vector<SlotRange>& out) {
    if (!creates_node(w, r, geo)) {
        return;
    }
    out.push_back(r);
    if (!r.is_leaf()) {
        collect(w, geo, r.left(), out);
        collect(w, geo, r.right(), out);
    }
}

}  // namespace

std::vector<SlotRange> created_ranges(const WriteDescriptor& w,
                                      const TreeGeometry& geo) {
    std::vector<SlotRange> out;
    const SlotRange root = geo.root_range(w.size_after);
    if (!root.empty()) {
        collect(w, geo, root, out);
    }
    return out;
}

}  // namespace blobseer::meta
