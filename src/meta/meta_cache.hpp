/// \file meta_cache.hpp
/// \brief Client-side metadata cache.
///
/// Because tree nodes are immutable, a cached node can never go stale —
/// caching needs no invalidation protocol at all. This is the effect the
/// paper measured in the supernova-detection study (§IV-A, [15]): "our
/// results ... underline the benefits of metadata caching on the client
/// side". The cache wraps any MetaStore (normally the DHT client) and is
/// bounded by node count with LRU eviction.

#pragma once

#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/stats.hpp"
#include "meta/meta_store.hpp"

namespace blobseer::meta {

class MetaCache final : public MetaStore {
  public:
    /// \param backing   the real store (not owned; must outlive the cache).
    /// \param capacity  max cached nodes; 0 disables caching entirely.
    MetaCache(MetaStore& backing, std::size_t capacity)
        : backing_(backing), capacity_(capacity) {}

    void put(const MetaKey& key, const MetaNode& node) override {
        backing_.put(key, node);
        if (capacity_ != 0) {
            insert(key, node);
        }
    }

    [[nodiscard]] MetaNode get(const MetaKey& key) override {
        if (capacity_ != 0) {
            const std::scoped_lock lock(mu_);
            const auto it = map_.find(key);
            if (it != map_.end()) {
                hits_.add();
                lru_.splice(lru_.begin(), lru_, it->second);
                return it->second->second;
            }
        }
        misses_.add();
        MetaNode node = backing_.get(key);
        if (capacity_ != 0) {
            insert(key, node);
        }
        return node;
    }

    [[nodiscard]] std::optional<MetaNode> try_get(
        const MetaKey& key) override {
        if (capacity_ != 0) {
            const std::scoped_lock lock(mu_);
            const auto it = map_.find(key);
            if (it != map_.end()) {
                return it->second->second;
            }
        }
        return backing_.try_get(key);
    }

    void erase(const MetaKey& key) override {
        {
            const std::scoped_lock lock(mu_);
            const auto it = map_.find(key);
            if (it != map_.end()) {
                lru_.erase(it->second);
                map_.erase(it);
            }
        }
        backing_.erase(key);
    }

    [[nodiscard]] std::uint64_t hits() const { return hits_.get(); }
    [[nodiscard]] std::uint64_t misses() const { return misses_.get(); }

    void clear() {
        const std::scoped_lock lock(mu_);
        lru_.clear();
        map_.clear();
    }

  private:
    using LruList = std::list<std::pair<MetaKey, MetaNode>>;

    void insert(const MetaKey& key, const MetaNode& node) {
        const std::scoped_lock lock(mu_);
        if (map_.contains(key)) {
            return;
        }
        lru_.emplace_front(key, node);
        map_[key] = lru_.begin();
        while (map_.size() > capacity_) {
            map_.erase(lru_.back().first);
            lru_.pop_back();
        }
    }

    MetaStore& backing_;
    const std::size_t capacity_;

    std::mutex mu_;  // guards lru_ and map_
    LruList lru_;
    std::unordered_map<MetaKey, LruList::iterator, MetaKeyHash> map_;

    Counter hits_;
    Counter misses_;
};

}  // namespace blobseer::meta
