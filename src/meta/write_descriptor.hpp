/// \file write_descriptor.hpp
/// \brief Write descriptors and the node-creation rule.
///
/// The version manager records, for every assigned version, *what* it
/// writes (offset, size) and the blob size before/after. This tiny record
/// is all another writer needs to predict every metadata node that version
/// will create ("weaving", paper §I-B.3): in a segment tree, the ancestors
/// of the written leaves are exactly the nodes whose range intersects the
/// written range — plus, when a write grows the tree, the prefix "bridge"
/// nodes that splice the old, shorter tree under the new, taller root.

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "meta/slot_range.hpp"

namespace blobseer::meta {

/// Record of one assigned write/append kept by the version manager.
struct WriteDescriptor {
    Version version = 0;
    /// Written byte range.
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    /// Blob size before this version (== size of version-1's snapshot).
    std::uint64_t size_before = 0;
    /// Blob size after this version (max(size_before, offset + size)).
    std::uint64_t size_after = 0;

    [[nodiscard]] ByteRange range() const noexcept { return {offset, size}; }
};

/// True iff version \p w creates tree node (w, \p r).
///
/// Rule (see file comment): within w's tree bounds, w creates every node
/// whose range intersects w's written slots, plus every prefix range
/// [0, 2^k) that is new in w's (taller) tree. The rule is shared verbatim
/// by the builder (to decide what to write) and by concurrent writers (to
/// predict keys) — a mismatch would dangle references, so it lives in
/// exactly one place.
[[nodiscard]] inline bool creates_node(const WriteDescriptor& w,
                                       const SlotRange& r,
                                       const TreeGeometry& geo) noexcept {
    const std::uint64_t slots_after = geo.tree_slots(w.size_after);
    // Within w's tree bounds? (ranges are pow2-aligned, so first < bound
    // and count <= bound imply end <= bound)
    if (r.first >= slots_after || r.count > slots_after) {
        return false;
    }
    if (r.intersects(geo.slots_of(w.range()))) {
        return true;
    }
    // Bridge prefix: the tree grew past the old root; w must create the
    // chain of prefixes that contain the old root.
    const std::uint64_t slots_before = geo.tree_slots(w.size_before);
    return r.first == 0 && r.count > slots_before;
}

/// Enumerate every node key range version \p w creates (used for garbage
/// collection of aborted versions and for metadata-overhead accounting).
[[nodiscard]] std::vector<SlotRange> created_ranges(const WriteDescriptor& w,
                                                    const TreeGeometry& geo);

}  // namespace blobseer::meta
