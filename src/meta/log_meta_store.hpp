/// \file log_meta_store.hpp
/// \brief Persistent metadata node store backed by the log engine.
///
/// Replaces DiskMetaStore's file-per-node layout: tree nodes are tiny
/// (tens of bytes), so one inode plus a write+rename pair per node is
/// nearly all overhead. Nodes serialize with the same binary layout as
/// DiskMetaStore (serialize_node/deserialize_node) and append to an
/// engine::LogEngine (DESIGN.md §8) keyed by the 32-byte MetaKey
/// encoding; restart recovery is the engine's checkpoint load instead of
/// a directory scan. As in DiskMetaStore, every node read or written is
/// mirrored in a RAM map — the paper keeps the RAM scheme "as an
/// underlying caching mechanism" — and lose_volatile() drops only that
/// cache; get() then falls back to the engine.

#pragma once

#include <filesystem>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "engine/log_engine.hpp"
#include "meta/disk_meta_store.hpp"

namespace blobseer::meta {

class LogMetaStore final : public LocalMetaStore {
  public:
    explicit LogMetaStore(std::filesystem::path dir)
        : LogMetaStore(make_config(std::move(dir))) {}

    explicit LogMetaStore(engine::EngineConfig cfg) : engine_(std::move(cfg)) {}

    void put(const MetaKey& key, const MetaNode& node) override {
        {
            const std::scoped_lock lock(mu_);
            if (cache_.contains(key)) {
                return;  // immutable nodes: idempotent
            }
        }
        // Atomic with the durable-existence check, so a post-crash
        // re-put (or a concurrent duplicate) never appends twice.
        (void)engine_.put_if_absent(encode_key(key), serialize_node(node));
        const std::scoped_lock lock(mu_);
        cache_.emplace(key, node);
    }

    [[nodiscard]] MetaNode get(const MetaKey& key) override {
        {
            const std::scoped_lock lock(mu_);
            const auto it = cache_.find(key);
            if (it != cache_.end()) {
                return it->second;
            }
        }
        // RAM tier lost (crash) or first touch since reopen: the engine
        // is the durable source.
        const auto raw = engine_.get(encode_key(key));
        if (!raw) {
            throw NotFoundError(key.to_string());
        }
        MetaNode node = deserialize_node(*raw);
        const std::scoped_lock lock(mu_);
        cache_.emplace(key, node);
        return node;
    }

    [[nodiscard]] std::optional<MetaNode> try_get(
        const MetaKey& key) override {
        try {
            return get(key);
        } catch (const NotFoundError&) {
            return std::nullopt;
        }
    }

    void erase(const MetaKey& key) override {
        {
            const std::scoped_lock lock(mu_);
            cache_.erase(key);
        }
        engine_.remove(encode_key(key));
    }

    /// RAM-tier population (mirrors DiskMetaStore: count of cached nodes,
    /// which equals the durable count except right after lose_volatile).
    [[nodiscard]] std::size_t count() const override {
        const std::scoped_lock lock(mu_);
        return cache_.size();
    }

    /// Durable node count regardless of cache population.
    [[nodiscard]] std::size_t durable_count() { return engine_.count(); }

    /// Crash: the RAM tier evaporates; the log survives.
    void lose_volatile() override {
        const std::scoped_lock lock(mu_);
        cache_.clear();
    }

    [[nodiscard]] engine::LogEngine& engine() noexcept { return engine_; }

    /// 32-byte little-endian (blob, version, first, count) key.
    [[nodiscard]] static std::string encode_key(const MetaKey& key) {
        Buffer out;
        out.reserve(32);
        engine::put_u64(out, key.blob);
        engine::put_u64(out, key.version);
        engine::put_u64(out, key.range.first);
        engine::put_u64(out, key.range.count);
        return {out.begin(), out.end()};
    }

  private:
    [[nodiscard]] static engine::EngineConfig make_config(
        std::filesystem::path dir) {
        engine::EngineConfig cfg;
        cfg.dir = std::move(dir);
        return cfg;
    }

    engine::LogEngine engine_;
    mutable std::mutex mu_;  // guards cache_
    std::unordered_map<MetaKey, MetaNode, MetaKeyHash> cache_;
};

}  // namespace blobseer::meta
