/// \file tree_reader.hpp
/// \brief Read-side descent of a version's metadata tree.
///
/// Readers never synchronize with anybody (paper §I-B.3: "from the reader
/// point of view the blob snapshot is at all times in a consistent
/// state"). Given a *published* version, plan_read() walks the immutable
/// tree and produces the ordered list of chunk segments (and holes) that
/// cover the requested byte range; the caller then fetches chunk data from
/// data providers in parallel.
///
/// validate_tree() is the invariant checker used by the property tests:
/// it walks a whole snapshot and verifies coverage, alignment, node kinds
/// and reference integrity.

#pragma once

#include <cstdint>
#include <vector>

#include "chunk/chunk_key.hpp"
#include "common/types.hpp"
#include "meta/meta_node.hpp"
#include "meta/meta_store.hpp"

namespace blobseer::meta {

/// One contiguous piece of a read: either a hole (reads as zeros) or a
/// slice of one stored chunk.
struct ReadSegment {
    /// Byte range of the blob this segment covers (already clipped to the
    /// request).
    ByteRange blob_range;
    bool hole = true;
    /// Valid when !hole:
    chunk::ChunkKey chunk;
    std::vector<NodeId> replicas;
    /// Offset of blob_range.offset within the chunk payload.
    std::uint64_t chunk_offset = 0;
    /// Stored payload size of the chunk.
    std::uint32_t chunk_bytes = 0;
};

struct ReadPlan {
    std::vector<ReadSegment> segments;  ///< ordered by blob offset
    std::size_t store_reads = 0;        ///< metadata fetches performed
};

/// Descend the tree of (\p blob, \p version) — a snapshot of byte size
/// \p snapshot_size — and plan the read of \p request. The request must
/// lie within the snapshot ([InvalidArgument] otherwise).
[[nodiscard]] ReadPlan plan_read(MetaStore& store, BlobId blob,
                                 Version version, std::uint64_t chunk_size,
                                 std::uint64_t snapshot_size,
                                 ByteRange request);

/// Whole-tree invariant check (test/debug utility).
struct TreeCheck {
    std::size_t inner_nodes = 0;
    std::size_t leaves = 0;
    std::size_t holes = 0;  ///< hole references encountered
    std::size_t max_depth = 0;
};

[[nodiscard]] TreeCheck validate_tree(MetaStore& store, BlobId blob,
                                      Version version,
                                      std::uint64_t chunk_size,
                                      std::uint64_t snapshot_size);

}  // namespace blobseer::meta
