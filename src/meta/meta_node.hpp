/// \file meta_node.hpp
/// \brief Keys and contents of versioned segment-tree nodes.
///
/// Node identity is the decisive design point of BlobSeer's metadata
/// scheme: a node is named by (blob, version, slot range), which is fully
/// *deterministic*. Any process that knows a version's write descriptor can
/// compute which nodes that version creates — without reading anything.
/// This is what lets concurrent writers "weave" references to each other's
/// not-yet-written nodes (paper §I-B.3, versioning-based concurrency
/// control) instead of synchronizing.
///
/// Nodes are immutable once written; they are only ever added, never
/// modified (the property that decouples readers from writers).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chunk/chunk_key.hpp"
#include "common/hash.hpp"
#include "common/types.hpp"
#include "meta/slot_range.hpp"

namespace blobseer::meta {

/// DHT key of a tree node.
struct MetaKey {
    BlobId blob = kInvalidBlob;
    Version version = 0;
    SlotRange range;

    friend bool operator==(const MetaKey&, const MetaKey&) = default;

    [[nodiscard]] std::uint64_t hash() const noexcept {
        return mix64(hash_combine(
            hash_combine(hash_combine(blob, version), range.first),
            range.count));
    }

    [[nodiscard]] std::string to_string() const {
        return "node(b" + std::to_string(blob) + ",v" +
               std::to_string(version) + "," + range.to_string() + ")";
    }
};

struct MetaKeyHash {
    std::size_t operator()(const MetaKey& k) const noexcept {
        return static_cast<std::size_t>(k.hash());
    }
};

/// Reference from an inner node to the node covering one of its halves.
/// The child's slot range is implied by the parent (left/right half), so
/// only the owning blob and creating version are stored. A default
/// ChildRef (blob == kInvalidBlob) is a *hole*: that half contains no data
/// and reads as zeros.
///
/// The blob id is almost always the parent's blob; it differs only across
/// a CLONE boundary, where a cloned blob's tree borrows subtrees from its
/// origin.
struct ChildRef {
    BlobId blob = kInvalidBlob;
    Version version = 0;

    [[nodiscard]] bool is_hole() const noexcept {
        return blob == kInvalidBlob;
    }

    friend bool operator==(const ChildRef&, const ChildRef&) = default;
};

/// A stored tree node: either an inner node (two child refs) or a leaf
/// (the replica set of the chunk written into this slot by this node's
/// version). A leaf with an empty replica set is a hole leaf (can appear
/// at slot 0 when the first write of a blob starts past slot 0).
struct MetaNode {
    enum class Kind : std::uint8_t { kInner, kLeaf };

    Kind kind = Kind::kInner;

    // Inner payload.
    ChildRef left;
    ChildRef right;

    // Leaf payload: data providers holding replicas of this slot's chunk.
    std::vector<NodeId> replicas;

    /// Unique id of the stored chunk (see chunk::ChunkKey). For a
    /// content-addressed leaf (cas below) this is the low half of the
    /// chunk digest instead.
    std::uint64_t chunk_uid = 0;

    /// Actual payload bytes stored in the chunk (<= chunk_size; smaller
    /// only for the blob's trailing chunk).
    std::uint32_t chunk_bytes = 0;

    /// Content-addressed leaf: the chunk is named by its SHA-256
    /// truncation (chunk_uid_hi, chunk_uid) rather than by an owning
    /// (blob, uid) pair, so identical data in different blobs shares one
    /// stored chunk.
    bool cas = false;
    std::uint64_t chunk_uid_hi = 0;

    [[nodiscard]] bool is_leaf() const noexcept { return kind == Kind::kLeaf; }

    /// The chunk this leaf points at; \p owner is the blob the leaf was
    /// reached through (only used for uid-addressed leaves).
    [[nodiscard]] chunk::ChunkKey chunk_key(BlobId owner) const noexcept {
        return cas ? chunk::ChunkKey::content(chunk_uid_hi, chunk_uid)
                   : chunk::ChunkKey{owner, chunk_uid};
    }

    /// Wire size estimate used to charge the simulated network.
    [[nodiscard]] std::uint64_t serialized_size() const noexcept {
        return is_leaf() ? 24 + 4 * replicas.size() + (cas ? 8 : 0) : 40;
    }

    [[nodiscard]] static MetaNode inner(ChildRef l, ChildRef r) {
        MetaNode n;
        n.kind = Kind::kInner;
        n.left = l;
        n.right = r;
        return n;
    }

    [[nodiscard]] static MetaNode leaf(std::vector<NodeId> replicas,
                                       std::uint64_t chunk_uid,
                                       std::uint32_t chunk_bytes) {
        MetaNode n;
        n.kind = Kind::kLeaf;
        n.replicas = std::move(replicas);
        n.chunk_uid = chunk_uid;
        n.chunk_bytes = chunk_bytes;
        return n;
    }

    [[nodiscard]] static MetaNode cas_leaf(std::vector<NodeId> replicas,
                                           std::uint64_t digest_hi,
                                           std::uint64_t digest_lo,
                                           std::uint32_t chunk_bytes) {
        MetaNode n = leaf(std::move(replicas), digest_lo, chunk_bytes);
        n.cas = true;
        n.chunk_uid_hi = digest_hi;
        return n;
    }
};

/// Wire size of a key (for network charging).
inline constexpr std::uint64_t kMetaKeyWireSize = 32;

}  // namespace blobseer::meta
