#include "meta/tree_reader.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "meta/slot_range.hpp"

namespace blobseer::meta {

namespace {

class ReadWalker {
  public:
    ReadWalker(MetaStore& store, const TreeGeometry& geo, ByteRange request)
        : store_(store),
          geo_(geo),
          request_(request),
          req_slots_(geo.slots_of(request)) {}

    ReadPlan run(const ChildRef& root, const SlotRange& root_range) {
        walk(root, root_range);
        return std::move(plan_);
    }

  private:
    /// Byte intersection of a slot range with the request.
    [[nodiscard]] ByteRange clip(const SlotRange& r) const noexcept {
        const std::uint64_t lo = std::max(r.first * geo_.chunk_size(),
                                          request_.offset);
        const std::uint64_t hi =
            std::min(r.end() * geo_.chunk_size(), request_.end());
        return {lo, hi > lo ? hi - lo : 0};
    }

    void walk(const ChildRef& ref, const SlotRange& r) {
        if (!r.intersects(req_slots_)) {
            return;
        }
        if (ref.is_hole()) {
            emit_hole(clip(r));
            return;
        }
        const MetaNode node = store_.get({ref.blob, ref.version, r});
        ++plan_.store_reads;
        if (r.is_leaf()) {
            if (!node.is_leaf()) {
                throw ConsistencyError("leaf-range node stored as inner at " +
                                       r.to_string());
            }
            emit_leaf(ref, r, node);
            return;
        }
        if (node.is_leaf()) {
            throw ConsistencyError("inner-range node stored as leaf at " +
                                   r.to_string());
        }
        walk(node.left, r.left());
        walk(node.right, r.right());
    }

    void emit_hole(const ByteRange& range) {
        if (range.empty()) {
            return;
        }
        // Merge adjacent holes to keep plans small.
        if (!plan_.segments.empty()) {
            ReadSegment& last = plan_.segments.back();
            if (last.hole && last.blob_range.end() == range.offset) {
                last.blob_range.size += range.size;
                return;
            }
        }
        ReadSegment seg;
        seg.blob_range = range;
        seg.hole = true;
        plan_.segments.push_back(std::move(seg));
    }

    void emit_leaf(const ChildRef& ref, const SlotRange& r,
                   const MetaNode& node) {
        const ByteRange range = clip(r);
        if (range.empty()) {
            return;
        }
        if (node.replicas.empty()) {
            emit_hole(range);  // bridge hole leaf
            return;
        }
        const std::uint64_t slot_start = r.first * geo_.chunk_size();
        const std::uint64_t payload_end = slot_start + node.chunk_bytes;
        // A chunk stores fewer than chunk_size bytes when it was the
        // blob's trailing chunk at write time. If a later version extended
        // the blob past it without rewriting the slot, the tail of the
        // slot is a gap that reads as zeros.
        const std::uint64_t data_end = std::min(range.end(), payload_end);
        if (data_end > range.offset) {
            ReadSegment seg;
            seg.blob_range = {range.offset, data_end - range.offset};
            seg.hole = false;
            seg.chunk = node.chunk_key(ref.blob);
            seg.replicas = node.replicas;
            seg.chunk_offset = range.offset - slot_start;
            seg.chunk_bytes = node.chunk_bytes;
            plan_.segments.push_back(std::move(seg));
        }
        if (range.end() > data_end) {
            const std::uint64_t hole_start = std::max(range.offset, data_end);
            emit_hole({hole_start, range.end() - hole_start});
        }
    }

    MetaStore& store_;
    const TreeGeometry& geo_;
    ByteRange request_;
    SlotRange req_slots_;
    ReadPlan plan_;
};

}  // namespace

ReadPlan plan_read(MetaStore& store, BlobId blob, Version version,
                   std::uint64_t chunk_size, std::uint64_t snapshot_size,
                   ByteRange request) {
    if (request.size == 0) {
        return {};
    }
    if (request.end() > snapshot_size) {
        throw InvalidArgument("read " + to_string(request) +
                              " past snapshot size " +
                              std::to_string(snapshot_size));
    }
    const TreeGeometry geo(chunk_size);
    ReadWalker walker(store, geo, request);
    return walker.run(ChildRef{blob, version}, geo.root_range(snapshot_size));
}

namespace {

void check_walk(MetaStore& store, const ChildRef& ref, const SlotRange& r,
                std::size_t depth, TreeCheck& out) {
    if (ref.is_hole()) {
        ++out.holes;
        return;
    }
    out.max_depth = std::max(out.max_depth, depth);
    const auto node = store.try_get({ref.blob, ref.version, r});
    if (!node) {
        throw ConsistencyError("dangling reference to " +
                               MetaKey{ref.blob, ref.version, r}.to_string());
    }
    if (r.is_leaf()) {
        if (!node->is_leaf()) {
            throw ConsistencyError("leaf range holds inner node at " +
                                   r.to_string());
        }
        ++out.leaves;
        return;
    }
    if (node->is_leaf()) {
        throw ConsistencyError("inner range holds leaf node at " +
                               r.to_string());
    }
    ++out.inner_nodes;
    check_walk(store, node->left, r.left(), depth + 1, out);
    check_walk(store, node->right, r.right(), depth + 1, out);
}

}  // namespace

TreeCheck validate_tree(MetaStore& store, BlobId blob, Version version,
                        std::uint64_t chunk_size,
                        std::uint64_t snapshot_size) {
    TreeCheck out;
    const TreeGeometry geo(chunk_size);
    const SlotRange root = geo.root_range(snapshot_size);
    if (!root.empty()) {
        check_walk(store, ChildRef{blob, version}, root, 0, out);
    }
    return out;
}

}  // namespace blobseer::meta
