/// \file meta_store.hpp
/// \brief Abstract access to the metadata node store, plus an in-memory
///        implementation used by unit tests and by single metadata
///        providers.
///
/// The production implementation is dht::DhtMetaClient (replicated puts
/// and gets over the metadata-provider DHT, with network costs); the tree
/// algorithms in tree_builder/tree_reader are written against this
/// interface so they can be property-tested exhaustively without a
/// cluster.

#pragma once

#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "meta/meta_node.hpp"

namespace blobseer::meta {

class MetaStore {
  public:
    virtual ~MetaStore() = default;

    /// Store a node. Nodes are immutable: storing the same key twice is
    /// idempotent (always the identical content by construction).
    virtual void put(const MetaKey& key, const MetaNode& node) = 0;

    /// Fetch a node. Throws NotFoundError if absent — on a healthy
    /// cluster that means the caller followed a reference into an
    /// unpublished or aborted version, which is a protocol violation.
    [[nodiscard]] virtual MetaNode get(const MetaKey& key) = 0;

    /// Lookup without throwing (used by invariant checkers).
    [[nodiscard]] virtual std::optional<MetaNode> try_get(
        const MetaKey& key) = 0;

    /// Remove a node (garbage collection of aborted versions).
    virtual void erase(const MetaKey& key) = 0;
};

/// A store that physically owns node data on one node (as opposed to the
/// client-side composites MetaDht/MetaCache): adds capacity queries and
/// crash simulation.
class LocalMetaStore : public MetaStore {
  public:
    /// Number of nodes stored.
    [[nodiscard]] virtual std::size_t count() const = 0;

    /// Drop volatile state (RAM stores lose everything; disk stores keep
    /// their files).
    virtual void lose_volatile() = 0;
};

/// Plain map-backed store. Thread-safe.
class InMemoryMetaStore final : public LocalMetaStore {
  public:
    void put(const MetaKey& key, const MetaNode& node) override {
        const std::scoped_lock lock(mu_);
        map_.try_emplace(key, node);
        puts_.add();
    }

    [[nodiscard]] MetaNode get(const MetaKey& key) override {
        gets_.add();
        const std::scoped_lock lock(mu_);
        const auto it = map_.find(key);
        if (it == map_.end()) {
            throw NotFoundError(key.to_string());
        }
        return it->second;
    }

    [[nodiscard]] std::optional<MetaNode> try_get(
        const MetaKey& key) override {
        const std::scoped_lock lock(mu_);
        const auto it = map_.find(key);
        if (it == map_.end()) {
            return std::nullopt;
        }
        return it->second;
    }

    void erase(const MetaKey& key) override {
        const std::scoped_lock lock(mu_);
        map_.erase(key);
    }

    /// Drop everything (crash simulation for RAM-resident metadata).
    void clear() {
        const std::scoped_lock lock(mu_);
        map_.clear();
    }

    void lose_volatile() override { clear(); }

    [[nodiscard]] std::size_t count() const override {
        const std::scoped_lock lock(mu_);
        return map_.size();
    }

    [[nodiscard]] std::uint64_t puts() const { return puts_.get(); }
    [[nodiscard]] std::uint64_t gets() const { return gets_.get(); }

  private:
    mutable std::mutex mu_;  // guards map_
    std::unordered_map<MetaKey, MetaNode, MetaKeyHash> map_;
    Counter puts_;
    Counter gets_;
};

}  // namespace blobseer::meta
