/// \file disk_meta_store.hpp
/// \brief Persistent metadata node store (file per node).
///
/// Paper §IV-B: "We also introduced persistent data and metadata
/// storage". Each tree node serializes to a small binary file named
/// after its key; reopening the directory recovers the full index (the
/// metadata-provider restart path). Writes use write-then-rename so a
/// crash never exposes a torn node. An in-memory copy of every node is
/// kept as a read cache (nodes are tiny; the paper kept the RAM scheme
/// "as an underlying caching mechanism").

#pragma once

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/buffer.hpp"
#include "common/error.hpp"
#include "meta/meta_store.hpp"

namespace blobseer::meta {

/// Binary node serialization (little-endian, fixed layout).
[[nodiscard]] inline Buffer serialize_node(const MetaNode& node) {
    Buffer out;
    auto put64 = [&out](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            out.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
        }
    };
    auto put32 = [&out](std::uint32_t v) {
        for (int i = 0; i < 4; ++i) {
            out.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
        }
    };
    out.push_back(node.is_leaf() ? 1 : 0);
    // Flags byte (was a zero pad before v5, so old records decode as
    // flags = 0): bit 0 marks a content-addressed leaf.
    out.push_back(node.cas ? 1 : 0);
    out.push_back(0);
    out.push_back(0);
    if (node.is_leaf()) {
        put64(node.chunk_uid);
        if (node.cas) {
            put64(node.chunk_uid_hi);
        }
        put32(node.chunk_bytes);
        put32(static_cast<std::uint32_t>(node.replicas.size()));
        for (const NodeId r : node.replicas) {
            put32(r);
        }
    } else {
        put64(node.left.blob);
        put64(node.left.version);
        put64(node.right.blob);
        put64(node.right.version);
    }
    return out;
}

[[nodiscard]] inline MetaNode deserialize_node(ConstBytes in) {
    std::size_t pos = 0;
    auto get64 = [&in, &pos]() {
        if (pos + 8 > in.size()) {
            throw ConsistencyError("truncated metadata node");
        }
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(in[pos++]) << (i * 8);
        }
        return v;
    };
    auto get32 = [&in, &pos]() {
        if (pos + 4 > in.size()) {
            throw ConsistencyError("truncated metadata node");
        }
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            v |= static_cast<std::uint32_t>(in[pos++]) << (i * 8);
        }
        return v;
    };
    if (in.empty()) {
        throw ConsistencyError("empty metadata node");
    }
    const bool leaf = in[0] == 1;
    const bool cas = in.size() > 1 && (in[1] & 1) != 0;
    pos = 4;
    MetaNode node;
    if (leaf) {
        const std::uint64_t uid = get64();
        const std::uint64_t hi = cas ? get64() : 0;
        const std::uint32_t bytes = get32();
        const std::uint32_t n = get32();
        std::vector<NodeId> replicas;
        replicas.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            replicas.push_back(get32());
        }
        node = cas ? MetaNode::cas_leaf(std::move(replicas), hi, uid, bytes)
                   : MetaNode::leaf(std::move(replicas), uid, bytes);
    } else {
        ChildRef left{get64(), get64()};
        ChildRef right{get64(), get64()};
        node = MetaNode::inner(left, right);
    }
    return node;
}

class DiskMetaStore final : public LocalMetaStore {
  public:
    explicit DiskMetaStore(std::filesystem::path dir) : dir_(std::move(dir)) {
        std::filesystem::create_directories(dir_);
        for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
            if (!entry.is_regular_file()) {
                continue;
            }
            MetaKey key{};
            if (!parse_name(entry.path().filename().string(), key)) {
                continue;
            }
            Buffer raw = read_file(entry.path());
            const std::scoped_lock lock(mu_);
            map_.emplace(key, deserialize_node(raw));
        }
    }

    void put(const MetaKey& key, const MetaNode& node) override {
        {
            const std::scoped_lock lock(mu_);
            if (map_.contains(key)) {
                return;  // immutable nodes: idempotent
            }
        }
        const auto path = path_of(key);
        const auto tmp = path.string() + ".tmp";
        write_file(tmp, serialize_node(node));
        std::filesystem::rename(tmp, path);
        const std::scoped_lock lock(mu_);
        map_.emplace(key, node);
    }

    [[nodiscard]] MetaNode get(const MetaKey& key) override {
        {
            const std::scoped_lock lock(mu_);
            const auto it = map_.find(key);
            if (it != map_.end()) {
                return it->second;
            }
        }
        // RAM tier lost (crash): fall back to disk.
        const auto path = path_of(key);
        if (!std::filesystem::exists(path)) {
            throw NotFoundError(key.to_string());
        }
        MetaNode node = deserialize_node(read_file(path));
        const std::scoped_lock lock(mu_);
        map_.emplace(key, node);
        return node;
    }

    [[nodiscard]] std::optional<MetaNode> try_get(
        const MetaKey& key) override {
        try {
            return get(key);
        } catch (const NotFoundError&) {
            return std::nullopt;
        }
    }

    void erase(const MetaKey& key) override {
        {
            const std::scoped_lock lock(mu_);
            map_.erase(key);
        }
        std::error_code ec;  // best effort
        std::filesystem::remove(path_of(key), ec);
    }

    [[nodiscard]] std::size_t count() const override {
        const std::scoped_lock lock(mu_);
        return map_.size();
    }

    /// Crash: the RAM tier evaporates; the files survive.
    void lose_volatile() override {
        const std::scoped_lock lock(mu_);
        map_.clear();
    }

    [[nodiscard]] const std::filesystem::path& directory() const noexcept {
        return dir_;
    }

  private:
    [[nodiscard]] std::filesystem::path path_of(const MetaKey& key) const {
        return dir_ / ("b" + std::to_string(key.blob) + "_v" +
                       std::to_string(key.version) + "_s" +
                       std::to_string(key.range.first) + "_c" +
                       std::to_string(key.range.count) + ".meta");
    }

    /// Inverse of path_of: "b<blob>_v<ver>_s<first>_c<count>.meta".
    static bool parse_name(const std::string& name, MetaKey& out) {
        if (!name.ends_with(".meta") || name.size() < 7 || name[0] != 'b') {
            return false;
        }
        const std::string stem = name.substr(1, name.size() - 6);
        std::vector<std::string> parts;
        std::size_t pos = 0;
        while (pos <= stem.size()) {
            const auto sep = stem.find('_', pos);
            parts.push_back(stem.substr(pos, sep - pos));
            if (sep == std::string::npos) {
                break;
            }
            pos = sep + 1;
        }
        if (parts.size() != 4 || parts[1].empty() || parts[1][0] != 'v' ||
            parts[2].empty() || parts[2][0] != 's' || parts[3].empty() ||
            parts[3][0] != 'c') {
            return false;
        }
        try {
            out.blob = std::stoull(parts[0]);
            out.version = std::stoull(parts[1].substr(1));
            out.range.first = std::stoull(parts[2].substr(1));
            out.range.count = std::stoull(parts[3].substr(1));
        } catch (const std::exception&) {
            return false;
        }
        return true;
    }

    static void write_file(const std::filesystem::path& path,
                           const Buffer& data) {
        std::FILE* f = std::fopen(path.c_str(), "wb");
        if (f == nullptr) {
            throw Error("cannot write " + path.string());
        }
        const std::size_t n =
            data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
        std::fclose(f);
        if (n != data.size()) {
            throw Error("short write to " + path.string());
        }
    }

    static Buffer read_file(const std::filesystem::path& path) {
        std::FILE* f = std::fopen(path.c_str(), "rb");
        if (f == nullptr) {
            throw NotFoundError(path.string());
        }
        std::fseek(f, 0, SEEK_END);
        const long size = std::ftell(f);
        std::fseek(f, 0, SEEK_SET);
        Buffer buf(static_cast<std::size_t>(size));
        const std::size_t n =
            buf.empty() ? 0 : std::fread(buf.data(), 1, buf.size(), f);
        std::fclose(f);
        if (n != buf.size()) {
            throw Error("short read from " + path.string());
        }
        return buf;
    }

    const std::filesystem::path dir_;
    mutable std::mutex mu_;  // guards map_
    std::unordered_map<MetaKey, MetaNode, MetaKeyHash> map_;
};

}  // namespace blobseer::meta
