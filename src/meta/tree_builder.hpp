/// \file tree_builder.hpp
/// \brief Construction of one version's metadata segment tree.
///
/// Implements the write-side metadata algorithm of paper §I-B.3: a writer
/// that was assigned version v builds a *new* tree for v without modifying
/// any existing node, by combining three kinds of children:
///
///  * nodes it creates itself (ranges its write touches, plus bridge
///    prefixes when the blob grew),
///  * *borrowed* references into the latest published tree (read with
///    O(log n) metadata fetches along the write boundary),
///  * *woven* references to nodes of concurrent, not-yet-published
///    versions — predicted from their write descriptors alone, without
///    any communication with those writers.
///
/// Weaving is what gives BlobSeer write/write concurrency: the only
/// serialization between concurrent writers is the version-manager assign
/// step.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "meta/meta_node.hpp"
#include "meta/meta_store.hpp"
#include "meta/write_descriptor.hpp"

namespace blobseer::meta {

/// Reference to an existing tree to borrow from: the latest published
/// version at assign time, or — for the first write after a CLONE — the
/// origin blob's cloned version.
struct TreeRef {
    BlobId blob = kInvalidBlob;
    Version version = 0;
    std::uint64_t size = 0;

    [[nodiscard]] bool valid() const noexcept {
        return blob != kInvalidBlob && size > 0;
    }
};

/// Cursor that co-descends the borrow tree while the builder descends the
/// new tree. Three states:
///  * null     — no data below this range (reads as holes),
///  * virtual  — the new tree is taller than the borrow tree and this
///               range strictly contains the borrow root (no stored node
///               covers it); synthesized on the fly,
///  * real     — a stored node covers exactly this range; its key is known
///               and its content is fetched only if the descent continues.
class BorrowCursor {
  public:
    /// Cursor covering \p target_root of the new tree, borrowing from
    /// \p base. \p base_root_slots is the slot capacity of base's tree.
    [[nodiscard]] static BorrowCursor root(const TreeRef& base,
                                           const TreeGeometry& geo,
                                           const SlotRange& target_root);

    [[nodiscard]] static BorrowCursor null() { return BorrowCursor{}; }

    /// True iff a stored node covers exactly the current range.
    [[nodiscard]] bool is_real() const noexcept {
        return state_ == State::kReal;
    }

    [[nodiscard]] bool is_null() const noexcept {
        return state_ == State::kNull;
    }

    /// Reference to the covering node (valid only when is_real()).
    [[nodiscard]] ChildRef ref() const noexcept {
        return {blob_, version_};
    }

    /// Produce cursors for the two halves of the current range, fetching
    /// the covering node's content from \p store when necessary.
    /// \p reads is incremented once per store fetch (metadata-overhead
    /// accounting for the experiments).
    [[nodiscard]] std::pair<BorrowCursor, BorrowCursor> descend(
        MetaStore& store, std::size_t& reads) const;

  private:
    enum class State : std::uint8_t { kNull, kVirtual, kReal };

    BorrowCursor() = default;

    State state_ = State::kNull;
    SlotRange range_;
    // Real: key of the covering node. Virtual: key of the borrow root
    // buried somewhere below the left spine.
    BlobId blob_ = kInvalidBlob;
    Version version_ = 0;
    std::uint64_t base_slots_ = 0;  // virtual only
};

/// Everything the builder needs; assembled by the client from the version
/// manager's assign reply.
struct BuildInput {
    BlobId blob = kInvalidBlob;
    std::uint64_t chunk_size = 0;
    Version version = 0;
    /// Written byte range (offset chunk-aligned; see core/blob_client).
    ByteRange write_range;
    std::uint64_t size_before = 0;
    std::uint64_t size_after = 0;
    /// Latest published tree at assign time (invalid for a fresh blob).
    TreeRef base;
    /// Write descriptors of unpublished versions in (base.version, version),
    /// ascending by version.
    std::vector<WriteDescriptor> concurrent;
    /// One leaf node per written slot, in slot order (replica lists and
    /// stored byte counts filled in by the caller after chunk upload).
    std::vector<MetaNode> leaves;
};

struct BuildResult {
    MetaKey root;
    std::size_t nodes_created = 0;
    std::size_t store_reads = 0;
};

/// Build and store version `in.version`'s tree. Every node is put into
/// \p store before the function returns, so the caller can commit to the
/// version manager immediately afterwards.
BuildResult build_version_tree(MetaStore& store, const BuildInput& in);

}  // namespace blobseer::meta
