#include "meta/tree_builder.hpp"

#include <cassert>

#include "common/error.hpp"

namespace blobseer::meta {

BorrowCursor BorrowCursor::root(const TreeRef& base, const TreeGeometry& geo,
                                const SlotRange& target_root) {
    BorrowCursor c;
    if (!base.valid() || target_root.empty()) {
        return c;  // null
    }
    const std::uint64_t base_slots = geo.tree_slots(base.size);
    c.range_ = target_root;
    c.blob_ = base.blob;
    c.version_ = base.version;
    c.base_slots_ = base_slots;
    if (target_root.count == base_slots) {
        c.state_ = State::kReal;
    } else if (target_root.count > base_slots) {
        c.state_ = State::kVirtual;
    } else {
        // Blob sizes are monotone, so the new tree can never be shorter
        // than the published one.
        throw ConsistencyError("borrow tree taller than target tree");
    }
    return c;
}

std::pair<BorrowCursor, BorrowCursor> BorrowCursor::descend(
    MetaStore& store, std::size_t& reads) const {
    switch (state_) {
        case State::kNull:
            return {null(), null()};

        case State::kVirtual: {
            // range_ = [0, 2^k) strictly containing the borrow root
            // [0, base_slots_). The left half either still contains it
            // (stay virtual) or *is* it (become real); the right half is
            // beyond any borrowed data.
            BorrowCursor left;
            left.range_ = range_.left();
            left.blob_ = blob_;
            left.version_ = version_;
            left.base_slots_ = base_slots_;
            assert(left.range_.count >= base_slots_);
            left.state_ = left.range_.count == base_slots_ ? State::kReal
                                                           : State::kVirtual;
            return {left, null()};
        }

        case State::kReal: {
            assert(!range_.is_leaf() && "descend through a leaf");
            const MetaNode node = store.get({blob_, version_, range_});
            ++reads;
            if (node.is_leaf()) {
                throw ConsistencyError("inner-range node stored as leaf at " +
                                       range_.to_string());
            }
            auto make = [this](const ChildRef& ref,
                               const SlotRange& r) -> BorrowCursor {
                if (ref.is_hole()) {
                    return null();
                }
                BorrowCursor c;
                c.state_ = State::kReal;
                c.range_ = r;
                c.blob_ = ref.blob;
                c.version_ = ref.version;
                return c;
            };
            return {make(node.left, range_.left()),
                    make(node.right, range_.right())};
        }
    }
    return {null(), null()};
}

namespace {

/// Recursive tree construction; see the algorithm sketch in the header.
class Builder {
  public:
    Builder(MetaStore& store, const BuildInput& in)
        : store_(store),
          in_(in),
          geo_(in.chunk_size),
          write_slots_(geo_.slots_of(in.write_range)),
          slots_before_(geo_.tree_slots(in.size_before)) {}

    BuildResult run() {
        const SlotRange root = geo_.root_range(in_.size_after);
        if (root.empty()) {
            throw InvalidArgument("building a tree for an empty blob");
        }
        const ChildRef ref =
            recurse(root, BorrowCursor::root(in_.base, geo_, root));
        if (ref.blob != in_.blob || ref.version != in_.version) {
            // The root always intersects the write range, so the writer
            // always creates it; anything else is a geometry bug.
            throw ConsistencyError("writer did not create its own root");
        }
        return {MetaKey{in_.blob, in_.version, root}, nodes_created_,
                store_reads_};
    }

  private:
    [[nodiscard]] bool is_bridge(const SlotRange& r) const noexcept {
        return r.first == 0 && r.count > slots_before_;
    }

    /// Who provides the node covering \p r in the new tree when this
    /// writer does not create it: the newest concurrent version that
    /// creates it, else the borrowed node, else a hole.
    [[nodiscard]] ChildRef resolve(const SlotRange& r,
                                   const BorrowCursor& cursor) const {
        for (auto it = in_.concurrent.rbegin(); it != in_.concurrent.rend();
             ++it) {
            if (creates_node(*it, r, geo_)) {
                return {in_.blob, it->version};
            }
        }
        if (cursor.is_real()) {
            return cursor.ref();
        }
        return {};  // hole
    }

    ChildRef recurse(const SlotRange& r, const BorrowCursor& cursor) {
        const bool mine = r.intersects(write_slots_) || is_bridge(r);
        if (!mine) {
            return resolve(r, cursor);
        }
        if (r.is_leaf()) {
            put_leaf(r);
            return {in_.blob, in_.version};
        }
        BorrowCursor lc = BorrowCursor::null();
        BorrowCursor rc = BorrowCursor::null();
        // Fetch borrow content only when some descendant may need to
        // resolve through it; subtrees fully overwritten by this write
        // never look at old metadata.
        if (!write_slots_.contains(r)) {
            std::tie(lc, rc) = cursor.descend(store_, store_reads_);
        }
        const ChildRef left = recurse(r.left(), lc);
        const ChildRef right = recurse(r.right(), rc);
        store_.put({in_.blob, in_.version, r}, MetaNode::inner(left, right));
        ++nodes_created_;
        return {in_.blob, in_.version};
    }

    void put_leaf(const SlotRange& r) {
        MetaNode leaf;
        if (r.intersects(write_slots_)) {
            const std::uint64_t idx = r.first - write_slots_.first;
            if (idx >= in_.leaves.size()) {
                throw InvalidArgument("missing leaf payload for slot " +
                                      std::to_string(r.first));
            }
            leaf = in_.leaves[idx];
        } else {
            // Bridge hole leaf: the blob's very first write starts past
            // slot 0, so the prefix chain bottoms out in an empty leaf.
            leaf = MetaNode::leaf({}, 0, 0);
        }
        store_.put({in_.blob, in_.version, r}, leaf);
        ++nodes_created_;
    }

    MetaStore& store_;
    const BuildInput& in_;
    TreeGeometry geo_;
    SlotRange write_slots_;
    std::uint64_t slots_before_;
    std::size_t nodes_created_ = 0;
    std::size_t store_reads_ = 0;
};

}  // namespace

BuildResult build_version_tree(MetaStore& store, const BuildInput& in) {
    if (in.write_range.size == 0) {
        throw InvalidArgument("zero-sized write");
    }
    if (in.leaves.size() !=
        TreeGeometry(in.chunk_size).slots_of(in.write_range).count) {
        throw InvalidArgument("leaf payload count does not match write range");
    }
    Builder builder(store, in);
    return builder.run();
}

}  // namespace blobseer::meta
