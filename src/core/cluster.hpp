/// \file cluster.hpp
/// \brief In-process BlobSeer deployment.
///
/// Owns every simulated process of one deployment (paper §I-B.2): the
/// version manager, the provider manager, N data providers and M metadata
/// providers, all registered on one simulated network. Clients are minted
/// with make_client(); each gets its own network node, metadata cache and
/// I/O thread pool, so "64 concurrent clients" in an experiment means 64
/// independent client objects driven from 64 threads.
///
/// Fault-injection helpers (kill/recover/degrade) wrap the network-level
/// primitives and keep the provider manager's liveness view in sync the
/// way heartbeats would.

#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "dht/metadata_provider.hpp"
#include "dht/ring.hpp"
#include "net/sim_network.hpp"
#include "provider/data_provider.hpp"
#include "provider/provider_manager.hpp"
#include "provider/repair_worker.hpp"
#include "rpc/dispatcher.hpp"
#include "rpc/routed_transport.hpp"
#include "rpc/sim_transport.hpp"
#include "version/version_manager.hpp"

namespace blobseer::engine {
class LogEngine;
}  // namespace blobseer::engine

namespace blobseer::core {

class BlobSeerClient;

class Cluster {
  public:
    explicit Cluster(ClusterConfig config);
    ~Cluster();

    Cluster(const Cluster&) = delete;
    Cluster& operator=(const Cluster&) = delete;

    [[nodiscard]] const ClusterConfig& config() const noexcept {
        return config_;
    }

    // ---- service access (experiments and tests) -------------------------

    [[nodiscard]] net::SimNetwork& network() noexcept { return net_; }
    /// Version-manager shard \p i (shard 0 — the only one in unsharded
    /// deployments — when omitted). Throws on an out-of-range shard.
    [[nodiscard]] version::VersionManager& version_manager(
        std::size_t i = 0) {
        return *vms_.at(i);
    }
    [[nodiscard]] std::size_t version_manager_count() const noexcept {
        return vms_.size();
    }
    [[nodiscard]] provider::ProviderManager& provider_manager() noexcept {
        return pm_;
    }
    /// Node of version-manager shard 0 (single-shard callers).
    [[nodiscard]] NodeId version_manager_node() const noexcept {
        return vm_nodes_.front();
    }
    /// Shard-indexed version-manager nodes.
    [[nodiscard]] const std::vector<NodeId>& version_manager_nodes()
        const noexcept {
        return vm_nodes_;
    }
    [[nodiscard]] NodeId provider_manager_node() const noexcept {
        return pm_node_;
    }

    [[nodiscard]] std::size_t data_provider_count() const noexcept {
        return data_providers_.size();
    }
    [[nodiscard]] provider::DataProvider& data_provider(std::size_t i) {
        return *data_providers_.at(i);
    }
    [[nodiscard]] std::size_t metadata_provider_count() const noexcept {
        return meta_providers_.size();
    }
    [[nodiscard]] dht::MetadataProvider& metadata_provider(std::size_t i) {
        return *meta_providers_.at(i);
    }

    [[nodiscard]] const dht::Ring& meta_ring() const noexcept { return ring_; }

    /// Server-side RPC skeleton fronting every service of this
    /// deployment. SimTransport clients dispatch into it inline; a
    /// TcpRpcServer (blobseer_serverd) serves it over real sockets.
    [[nodiscard]] rpc::Dispatcher& dispatcher() noexcept {
        return dispatcher_;
    }

    /// The topology advertised to remote clients (kTopology RPC).
    [[nodiscard]] rpc::Topology topology() const;

    /// node-id -> service maps used by client stubs.
    [[nodiscard]] const std::unordered_map<NodeId, provider::DataProvider*>&
    data_provider_map() const noexcept {
        return dp_by_node_;
    }
    [[nodiscard]] const std::unordered_map<NodeId, dht::MetadataProvider*>&
    meta_provider_map() const noexcept {
        return mp_by_node_;
    }

    // ---- clients -----------------------------------------------------------

    /// Mint a client with its own network identity.
    [[nodiscard]] std::unique_ptr<BlobSeerClient> make_client(
        const std::string& name = "client");

    // ---- fault injection -----------------------------------------------------

    /// Kill data provider \p i. \p lose_volatile additionally wipes its
    /// RAM contents (RAM-backed stores lose everything; two-tier stores
    /// only lose the cache).
    void kill_data_provider(std::size_t i, bool lose_volatile = false);
    void recover_data_provider(std::size_t i);

    void kill_metadata_provider(std::size_t i, bool lose_state = false);
    void recover_metadata_provider(std::size_t i);

    /// Degrade (slow down) a data provider, the QoS study's "flaky node".
    void degrade_data_provider(std::size_t i, double factor,
                               Duration extra_latency = {});
    void restore_data_provider(std::size_t i);

    // ---- membership & repair (protocol v6) -------------------------------

    /// Synchronously drain the repair queue; returns the replica copies
    /// created. Tests call this instead of waiting on the background
    /// worker (which only runs when config.repair_interval > 0).
    std::uint64_t drain_repairs() { return repair_worker_->drain_once(); }

    [[nodiscard]] provider::RepairWorker& repair_worker() noexcept {
        return *repair_worker_;
    }

  private:
    ClusterConfig config_;
    net::SimNetwork net_;

    /// Per-shard operation journals backing vms_ when
    /// durable_version_manager is set (each shard shares ownership of
    /// its own; see VersionManager::attach_journal).
    std::vector<std::shared_ptr<engine::LogEngine>> vm_journals_;
    /// Boot counter of this disk root (0 = volatile deployment): keeps
    /// chunk uids minted by restarted deployments disjoint from every
    /// earlier boot's (see BlobSeerClient::next_uid).
    std::uint64_t uid_epoch_ = 0;
    /// Version-manager shards, indexed by shard (= blob_shard of every
    /// blob they own).
    std::vector<std::unique_ptr<version::VersionManager>> vms_;
    std::vector<NodeId> vm_nodes_;

    provider::ProviderManager pm_;
    NodeId pm_node_ = kInvalidNode;

    std::vector<std::unique_ptr<provider::DataProvider>> data_providers_;
    std::vector<std::unique_ptr<dht::MetadataProvider>> meta_providers_;
    std::unordered_map<NodeId, provider::DataProvider*> dp_by_node_;
    std::unordered_map<NodeId, dht::MetadataProvider*> mp_by_node_;

    dht::Ring ring_;
    rpc::Dispatcher dispatcher_;
    /// Atomic: experiments mint clients from many threads at once.
    std::atomic<std::size_t> next_client_{0};

    // Membership & repair. Declared last: the worker and the heartbeat
    // sweeper reference every service above, so they must die first.
    NodeId repair_node_ = kInvalidNode;
    std::unique_ptr<rpc::SimTransport> repair_sim_;
    /// The worker's transport: simulated wire to in-process providers,
    /// per-node TCP routes to external daemons (added on announce).
    std::unique_ptr<rpc::RoutedTransport> repair_transport_;
    std::unique_ptr<provider::RepairWorker> repair_worker_;
    std::condition_variable_any heartbeat_cv_;
    std::jthread heartbeat_thread_;
};

}  // namespace blobseer::core
