#include "core/cluster.hpp"

#include "chunk/disk_store.hpp"
#include "chunk/ram_store.hpp"
#include "chunk/two_tier_store.hpp"
#include "core/client.hpp"
#include "meta/disk_meta_store.hpp"

namespace blobseer::core {

namespace {

std::unique_ptr<chunk::ChunkStore> make_store(const ClusterConfig& cfg,
                                              std::size_t index) {
    switch (cfg.store) {
        case StoreBackend::kRam:
            return std::make_unique<chunk::RamStore>();
        case StoreBackend::kDisk:
            return std::make_unique<chunk::DiskStore>(
                cfg.disk_root / ("dp-" + std::to_string(index)));
        case StoreBackend::kTwoTier:
            return std::make_unique<chunk::TwoTierStore>(
                std::make_unique<chunk::DiskStore>(
                    cfg.disk_root / ("dp-" + std::to_string(index))),
                cfg.ram_cache_budget);
    }
    throw InvalidArgument("unknown store backend");
}

}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      net_(config.network),
      pm_(config.placement, config.seed) {
    vm_node_ = net_.add_node("version-manager");
    pm_node_ = net_.add_node("provider-manager");

    data_providers_.reserve(config_.data_providers);
    for (std::size_t i = 0; i < config_.data_providers; ++i) {
        const NodeId node = net_.add_node("dp-" + std::to_string(i));
        data_providers_.push_back(std::make_unique<provider::DataProvider>(
            node, make_store(config_, i)));
        dp_by_node_[node] = data_providers_.back().get();
        pm_.register_provider(node);
    }

    meta_providers_.reserve(config_.metadata_providers);
    for (std::size_t i = 0; i < config_.metadata_providers; ++i) {
        const NodeId node = net_.add_node("mp-" + std::to_string(i));
        std::unique_ptr<meta::LocalMetaStore> store;
        if (config_.meta_store == ClusterConfig::MetaBackend::kDisk) {
            store = std::make_unique<meta::DiskMetaStore>(
                config_.disk_root / ("mp-" + std::to_string(i)));
        } else {
            store = std::make_unique<meta::InMemoryMetaStore>();
        }
        meta_providers_.push_back(std::make_unique<dht::MetadataProvider>(
            node, config_.meta_ops_per_second, std::move(store)));
        mp_by_node_[node] = meta_providers_.back().get();
        ring_.add_node(node);
    }
}

Cluster::~Cluster() = default;

std::unique_ptr<BlobSeerClient> Cluster::make_client(
    const std::string& name) {
    const NodeId node =
        net_.add_node(name + "-" + std::to_string(next_client_++));
    return std::make_unique<BlobSeerClient>(*this, node);
}

void Cluster::kill_data_provider(std::size_t i, bool lose_volatile) {
    provider::DataProvider& dp = data_provider(i);
    net_.kill(dp.node());
    if (lose_volatile) {
        dp.lose_volatile_state();
    }
    // Heartbeat loss: the provider manager stops placing data there.
    pm_.mark_dead(dp.node());
}

void Cluster::recover_data_provider(std::size_t i) {
    provider::DataProvider& dp = data_provider(i);
    net_.recover(dp.node());
    pm_.mark_alive(dp.node());
}

void Cluster::kill_metadata_provider(std::size_t i, bool lose_state) {
    dht::MetadataProvider& mp = metadata_provider(i);
    net_.kill(mp.node());
    if (lose_state) {
        mp.lose_state();
    }
}

void Cluster::recover_metadata_provider(std::size_t i) {
    net_.recover(metadata_provider(i).node());
}

void Cluster::degrade_data_provider(std::size_t i, double factor,
                                    Duration extra_latency) {
    net_.degrade(data_provider(i).node(), factor, extra_latency);
}

void Cluster::restore_data_provider(std::size_t i) {
    net_.restore(data_provider(i).node());
}

}  // namespace blobseer::core
