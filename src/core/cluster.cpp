#include "core/cluster.hpp"

#include "chunk/disk_store.hpp"
#include "chunk/ram_store.hpp"
#include "chunk/two_tier_store.hpp"
#include "core/client.hpp"
#include "meta/disk_meta_store.hpp"
#include "rpc/sim_transport.hpp"

namespace blobseer::core {

namespace {

std::unique_ptr<chunk::ChunkStore> make_store(const ClusterConfig& cfg,
                                              std::size_t index) {
    switch (cfg.store) {
        case StoreBackend::kRam:
            return std::make_unique<chunk::RamStore>();
        case StoreBackend::kDisk:
            return std::make_unique<chunk::DiskStore>(
                cfg.disk_root / ("dp-" + std::to_string(index)));
        case StoreBackend::kTwoTier:
            return std::make_unique<chunk::TwoTierStore>(
                std::make_unique<chunk::DiskStore>(
                    cfg.disk_root / ("dp-" + std::to_string(index))),
                cfg.ram_cache_budget);
    }
    throw InvalidArgument("unknown store backend");
}

}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      net_(config.network),
      pm_(config.placement, config.seed) {
    vm_node_ = net_.add_node("version-manager");
    pm_node_ = net_.add_node("provider-manager");

    data_providers_.reserve(config_.data_providers);
    for (std::size_t i = 0; i < config_.data_providers; ++i) {
        const NodeId node = net_.add_node("dp-" + std::to_string(i));
        data_providers_.push_back(std::make_unique<provider::DataProvider>(
            node, make_store(config_, i)));
        dp_by_node_[node] = data_providers_.back().get();
        pm_.register_provider(node);
    }

    meta_providers_.reserve(config_.metadata_providers);
    for (std::size_t i = 0; i < config_.metadata_providers; ++i) {
        const NodeId node = net_.add_node("mp-" + std::to_string(i));
        std::unique_ptr<meta::LocalMetaStore> store;
        if (config_.meta_store == ClusterConfig::MetaBackend::kDisk) {
            store = std::make_unique<meta::DiskMetaStore>(
                config_.disk_root / ("mp-" + std::to_string(i)));
        } else {
            store = std::make_unique<meta::InMemoryMetaStore>();
        }
        meta_providers_.push_back(std::make_unique<dht::MetadataProvider>(
            node, config_.meta_ops_per_second, std::move(store)));
        mp_by_node_[node] = meta_providers_.back().get();
        ring_.add_node(node);
    }

    // Wire every service into the RPC skeleton. Remote client ids start
    // far above any simulated node id so the two spaces never collide.
    dispatcher_.set_version_manager(vm_node_, &vm_);
    dispatcher_.set_provider_manager(pm_node_, &pm_);
    for (const auto& [node, dp] : dp_by_node_) {
        dispatcher_.add_data_provider(node, dp);
    }
    for (const auto& [node, mp] : mp_by_node_) {
        dispatcher_.add_metadata_provider(node, mp);
    }
    dispatcher_.set_topology(topology(), 1u << 20);
}

Cluster::~Cluster() = default;

rpc::Topology Cluster::topology() const {
    rpc::Topology t;
    t.vm_node = vm_node_;
    t.pm_node = pm_node_;
    t.data_nodes.reserve(data_providers_.size());
    for (const auto& dp : data_providers_) {
        t.data_nodes.push_back(dp->node());
    }
    t.meta_nodes.reserve(meta_providers_.size());
    for (const auto& mp : meta_providers_) {
        t.meta_nodes.push_back(mp->node());
    }
    t.meta_replication = config_.meta_replication;
    t.default_replication = config_.default_replication;
    t.publish_timeout_ms = static_cast<std::uint64_t>(
        duration_cast<milliseconds>(config_.publish_timeout).count());
    return t;
}

std::unique_ptr<BlobSeerClient> Cluster::make_client(
    const std::string& name) {
    const NodeId node =
        net_.add_node(name + "-" + std::to_string(next_client_++));
    ClientEnv env;
    env.transport =
        std::make_shared<rpc::SimTransport>(net_, node, dispatcher_);
    env.self = node;
    env.vm_node = vm_node_;
    env.pm_node = pm_node_;
    env.meta_ring = ring_;
    env.meta_replication = config_.meta_replication;
    env.default_replication = config_.default_replication;
    env.pipelined_replication = config_.pipelined_replication;
    env.meta_cache_nodes = config_.client_meta_cache_nodes;
    env.io_threads = config_.client_io_threads;
    env.publish_timeout = config_.publish_timeout;
    return std::make_unique<BlobSeerClient>(std::move(env));
}

void Cluster::kill_data_provider(std::size_t i, bool lose_volatile) {
    provider::DataProvider& dp = data_provider(i);
    net_.kill(dp.node());
    if (lose_volatile) {
        dp.lose_volatile_state();
    }
    // Heartbeat loss: the provider manager stops placing data there.
    pm_.mark_dead(dp.node());
}

void Cluster::recover_data_provider(std::size_t i) {
    provider::DataProvider& dp = data_provider(i);
    net_.recover(dp.node());
    pm_.mark_alive(dp.node());
}

void Cluster::kill_metadata_provider(std::size_t i, bool lose_state) {
    dht::MetadataProvider& mp = metadata_provider(i);
    net_.kill(mp.node());
    if (lose_state) {
        mp.lose_state();
    }
}

void Cluster::recover_metadata_provider(std::size_t i) {
    net_.recover(metadata_provider(i).node());
}

void Cluster::degrade_data_provider(std::size_t i, double factor,
                                    Duration extra_latency) {
    net_.degrade(data_provider(i).node(), factor, extra_latency);
}

void Cluster::restore_data_provider(std::size_t i) {
    net_.restore(data_provider(i).node());
}

}  // namespace blobseer::core
