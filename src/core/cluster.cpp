#include "core/cluster.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "cache/compressed_file_cache.hpp"
#include "chunk/disk_store.hpp"
#include "chunk/log_store.hpp"
#include "chunk/ram_store.hpp"
#include "chunk/two_tier_store.hpp"
#include "core/client.hpp"
#include "engine/log_engine.hpp"
#include "engine/segment_file.hpp"
#include "meta/disk_meta_store.hpp"
#include "meta/log_meta_store.hpp"
#include "rpc/sim_transport.hpp"
#include "rpc/tcp_transport.hpp"

namespace blobseer::core {

namespace {

std::unique_ptr<chunk::LogStore> make_log_store(const ClusterConfig& cfg,
                                                std::size_t index) {
    engine::EngineConfig ecfg;
    ecfg.dir = cfg.disk_root / ("dp-" + std::to_string(index));
    ecfg.compress_on_compact = cfg.compress_cold_segments;
    return std::make_unique<chunk::LogStore>(std::move(ecfg));
}

std::unique_ptr<chunk::ChunkStore> make_store(const ClusterConfig& cfg,
                                              std::size_t index) {
    switch (cfg.store) {
        case StoreBackend::kRam:
            return std::make_unique<chunk::RamStore>();
        case StoreBackend::kDisk:
            return std::make_unique<chunk::DiskStore>(
                cfg.disk_root / ("dp-" + std::to_string(index)));
        case StoreBackend::kTwoTier:
            return std::make_unique<chunk::TwoTierStore>(
                std::make_unique<chunk::DiskStore>(
                    cfg.disk_root / ("dp-" + std::to_string(index))),
                cfg.ram_cache_budget);
        case StoreBackend::kLog:
            return make_log_store(cfg, index);
        case StoreBackend::kTwoTierLog:
            return std::make_unique<chunk::TieredStore>(
                make_log_store(cfg, index), cfg.ram_cache_budget);
        case StoreBackend::kThreeTierLog: {
            cache::FileCacheConfig fcfg;
            const auto root = cfg.file_cache_dir.empty()
                                  ? cfg.disk_root / "file-cache"
                                  : cfg.file_cache_dir;
            fcfg.dir = root / ("dp-" + std::to_string(index));
            fcfg.budget_bytes = cfg.file_cache_budget;
            return std::make_unique<chunk::TieredStore>(
                make_log_store(cfg, index), cfg.ram_cache_budget,
                std::make_unique<cache::CompressedFileCache>(fcfg));
        }
    }
    throw InvalidArgument("unknown store backend");
}

/// Read-bump-rewrite the boot counter at \p path (plain decimal file,
/// written tmp+fsync+rename: a torn or failed write must never roll the
/// epoch back, or a later boot would re-enter an already-used uid
/// space). First boot returns 1; see BlobSeerClient::next_uid for why a
/// durable deployment needs a fresh uid epoch per boot.
std::uint64_t bump_uid_epoch(const std::filesystem::path& path) {
    std::uint64_t epoch = 0;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        // Only "no file yet" may mean first boot: treating a transient
        // open failure as epoch 0 would re-enter used uid spaces.
        if (errno != ENOENT) {
            throw Error("cannot read " + path.string() + ": " +
                        std::strerror(errno));
        }
    } else {
        unsigned long long v = 0;
        const int got = std::fscanf(f, "%llu", &v);
        std::fclose(f);
        if (got != 1) {
            throw Error("corrupt uid-epoch file " + path.string() +
                        "; refusing to reset the chunk-uid namespace");
        }
        epoch = v;
    }
    ++epoch;
    if (epoch >= (1u << 12)) {
        throw Error("uid epoch exhausted after 4095 boots of " +
                    path.string() + "; migrate to a fresh disk root");
    }
    const auto tmp = std::filesystem::path(path.string() + ".tmp");
    {
        // SegmentFile throws on short writes and fsync failures — a
        // disk-full boot aborts instead of renaming a truncated epoch.
        auto file = engine::SegmentFile::open(tmp, true);
        file->truncate(0);
        const std::string text = std::to_string(epoch) + "\n";
        file->append(ConstBytes(
            reinterpret_cast<const std::uint8_t*>(text.data()),
            text.size()));
        file->sync();
    }
    std::filesystem::rename(tmp, path);
    // Make the rename itself durable: without a directory fsync a power
    // failure could resurface the old epoch after clients already
    // minted uids under the new one.
    const int dir_fd =
        ::open(path.parent_path().c_str(), O_RDONLY | O_DIRECTORY);
    if (dir_fd < 0 || ::fsync(dir_fd) != 0) {
        const int err = errno;
        if (dir_fd >= 0) {
            ::close(dir_fd);
        }
        throw Error("cannot fsync " + path.parent_path().string() + ": " +
                    std::strerror(err));
    }
    ::close(dir_fd);
    return epoch;
}

/// True when any configured backend persists state under disk_root —
/// exactly the deployments whose next boot must not re-mint chunk uids.
bool needs_uid_epoch(const ClusterConfig& cfg) {
    return cfg.store != StoreBackend::kRam ||
           cfg.meta_store != ClusterConfig::MetaBackend::kRam ||
           cfg.durable_version_manager;
}

std::unique_ptr<meta::LocalMetaStore> make_meta_store(
    const ClusterConfig& cfg, std::size_t index) {
    switch (cfg.meta_store) {
        case ClusterConfig::MetaBackend::kRam:
            return std::make_unique<meta::InMemoryMetaStore>();
        case ClusterConfig::MetaBackend::kDisk:
            return std::make_unique<meta::DiskMetaStore>(
                cfg.disk_root / ("mp-" + std::to_string(index)));
        case ClusterConfig::MetaBackend::kLog:
            return std::make_unique<meta::LogMetaStore>(
                cfg.disk_root / ("mp-" + std::to_string(index)));
    }
    throw InvalidArgument("unknown metadata backend");
}

}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      net_(config.network),
      pm_(config.placement, config.seed) {
    if (needs_uid_epoch(config_)) {
        // Any durable backend means a later boot on this disk_root will
        // re-mint client ids; chunk idempotence then needs disjoint uid
        // spaces per boot (DiskStore and LogStore both keep the FIRST
        // bytes put under a key).
        std::filesystem::create_directories(config_.disk_root);
        uid_epoch_ = bump_uid_epoch(config_.disk_root / "uid-epoch");
    }

    const std::size_t n_vms =
        std::max<std::size_t>(1, config_.num_version_managers);
    if (n_vms > kMaxBlobShards) {
        throw InvalidArgument("num_version_managers " +
                              std::to_string(n_vms) + " exceeds the " +
                              std::to_string(kMaxBlobShards) +
                              "-shard blob-id namespace");
    }
    vms_.reserve(n_vms);
    vm_nodes_.reserve(n_vms);
    for (std::size_t i = 0; i < n_vms; ++i) {
        vms_.push_back(std::make_unique<version::VersionManager>(
            static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(n_vms)));
        if (config_.durable_version_manager) {
            engine::EngineConfig jc;
            jc.dir = config_.disk_root / ("vm-" + std::to_string(i));
            // Replay depends on append order, so the compactor (which
            // relocates records) stays off; the journals are tiny anyway.
            jc.background_compaction = false;
            jc.checkpoint_interval_records = 0;
            vm_journals_.push_back(std::make_shared<engine::LogEngine>(jc));
            vms_.back()->attach_journal(vm_journals_.back());
        }
        vm_nodes_.push_back(
            net_.add_node("version-manager-" + std::to_string(i)));
    }
    pm_node_ = net_.add_node("provider-manager");

    data_providers_.reserve(config_.data_providers);
    for (std::size_t i = 0; i < config_.data_providers; ++i) {
        const NodeId node = net_.add_node("dp-" + std::to_string(i));
        data_providers_.push_back(std::make_unique<provider::DataProvider>(
            node, make_store(config_, i)));
        dp_by_node_[node] = data_providers_.back().get();
        pm_.register_provider(node);
    }

    meta_providers_.reserve(config_.metadata_providers);
    for (std::size_t i = 0; i < config_.metadata_providers; ++i) {
        const NodeId node = net_.add_node("mp-" + std::to_string(i));
        meta_providers_.push_back(std::make_unique<dht::MetadataProvider>(
            node, config_.meta_ops_per_second, make_meta_store(config_, i)));
        mp_by_node_[node] = meta_providers_.back().get();
        ring_.add_node(node);
    }

    // Wire every service into the RPC skeleton. Remote client ids start
    // far above any simulated node id so the two spaces never collide.
    for (std::size_t i = 0; i < vms_.size(); ++i) {
        dispatcher_.add_version_manager(vm_nodes_[i], vms_[i].get());
    }
    dispatcher_.set_provider_manager(pm_node_, &pm_);
    for (const auto& [node, dp] : dp_by_node_) {
        dispatcher_.add_data_provider(node, dp);
    }
    for (const auto& [node, mp] : mp_by_node_) {
        dispatcher_.add_metadata_provider(node, mp);
    }
    dispatcher_.set_topology(topology(), 1u << 20);
    // Requests to a killed node must fail identically whether they come
    // through SimTransport (the network refuses) or a real TCP socket
    // (the dispatcher refuses). Ids outside the simulated space (remote
    // clients, external providers) are always reachable.
    dispatcher_.set_fault_check([this](NodeId node) {
        return node >= net_.node_count() || net_.is_alive(node);
    });

    // ---- membership & repair (protocol v6) ------------------------------
    pm_.set_repair_floor(config_.default_replication);
    if (needs_uid_epoch(config_)) {
        // Durable deployments also persist the pending-repair set, so a
        // manager restart mid-outage resumes instead of forgetting.
        pm_.open_repair_journal(
            (config_.disk_root / "pm-repair.journal").string());
    }
    for (auto& dp : data_providers_) {
        const NodeId node = dp->node();
        // In-process providers feed the location index synchronously —
        // the moral equivalent of a heartbeat with a zero-length delay.
        dp->set_inventory_observer([this, node](const chunk::ChunkKey& key,
                                                std::uint64_t bytes,
                                                bool stored) {
            if (stored) {
                pm_.note_chunk_stored(node, key, bytes);
            } else {
                pm_.note_chunk_removed(node, key);
            }
        });
    }
    repair_node_ = net_.add_node("repair-worker");
    repair_sim_ = std::make_unique<rpc::SimTransport>(net_, repair_node_,
                                                      dispatcher_);
    repair_transport_ = std::make_unique<rpc::RoutedTransport>(*repair_sim_);
    provider::RepairWorker::Options repair_options;
    repair_options.content_addressed = config_.content_addressed;
    repair_worker_ = std::make_unique<provider::RepairWorker>(
        pm_, *repair_transport_, vm_nodes_, pm_node_, repair_node_,
        repair_options);
    pm_.set_announce_hook([this](NodeId node, const std::string& host,
                                 std::uint32_t port) {
        // An external daemon announced: give the repair worker a wire to
        // it and advertise it to future remote clients.
        repair_transport_->add_route(
            node, std::make_shared<rpc::TcpTransport>(
                      host, static_cast<std::uint16_t>(port)));
        dispatcher_.refresh_topology(topology());
    });
    if (config_.heartbeat_timeout > Duration::zero()) {
        pm_.set_heartbeat_timeout_ms(static_cast<std::uint64_t>(
            duration_cast<milliseconds>(config_.heartbeat_timeout)
                .count()));
        heartbeat_thread_ = std::jthread([this](std::stop_token stop) {
            const Duration tick =
                std::max<Duration>(config_.heartbeat_timeout / 4,
                                   milliseconds(10));
            std::mutex mu;
            std::unique_lock lock(mu);
            while (!stop.stop_requested()) {
                (void)pm_.check_heartbeats();
                (void)heartbeat_cv_.wait_for(lock, stop, tick,
                                             [] { return false; });
            }
        });
    }
    if (config_.repair_interval > Duration::zero()) {
        repair_worker_->start(config_.repair_interval);
    }
}

Cluster::~Cluster() = default;

rpc::Topology Cluster::topology() const {
    rpc::Topology t;
    t.vm_nodes = vm_nodes_;
    t.pm_node = pm_node_;
    t.data_nodes.reserve(data_providers_.size());
    for (const auto& dp : data_providers_) {
        t.data_nodes.push_back(dp->node());
    }
    t.meta_nodes.reserve(meta_providers_.size());
    for (const auto& mp : meta_providers_) {
        t.meta_nodes.push_back(mp->node());
    }
    t.meta_replication = config_.meta_replication;
    t.default_replication = config_.default_replication;
    t.publish_timeout_ms = static_cast<std::uint64_t>(
        duration_cast<milliseconds>(config_.publish_timeout).count());
    t.uid_epoch = uid_epoch_;
    t.content_addressed = config_.content_addressed;
    // Announced external providers are part of the data plane: clients
    // place onto them and dial them directly at the carried endpoint.
    for (const auto& ep : pm_.external_endpoints()) {
        t.data_nodes.push_back(ep.node);
        t.provider_endpoints.push_back({ep.node, ep.host, ep.port});
    }
    return t;
}

std::unique_ptr<BlobSeerClient> Cluster::make_client(
    const std::string& name) {
    const NodeId node =
        net_.add_node(name + "-" + std::to_string(next_client_++));
    ClientEnv env;
    env.transport =
        std::make_shared<rpc::SimTransport>(net_, node, dispatcher_);
    env.self = node;
    env.vm_nodes = vm_nodes_;
    env.pm_node = pm_node_;
    env.data_nodes.reserve(data_providers_.size());
    for (const auto& dp : data_providers_) {
        env.data_nodes.push_back(dp->node());
    }
    env.content_addressed = config_.content_addressed;
    env.meta_ring = ring_;
    env.meta_replication = config_.meta_replication;
    env.default_replication = config_.default_replication;
    env.pipelined_replication = config_.pipelined_replication;
    env.meta_cache_nodes = config_.client_meta_cache_nodes;
    env.io_threads = config_.client_io_threads;
    env.max_inflight_chunks = config_.client_max_inflight_chunks;
    env.publish_timeout = config_.publish_timeout;
    env.uid_epoch = uid_epoch_;
    env.trace = config_.client_trace;
    return std::make_unique<BlobSeerClient>(std::move(env));
}

void Cluster::kill_data_provider(std::size_t i, bool lose_volatile) {
    provider::DataProvider& dp = data_provider(i);
    net_.kill(dp.node());
    // Heartbeat loss: the provider manager stops placing data there and
    // queues every chunk the death left under-replicated. Enqueue while
    // the index still lists the victim as holder (before any wipe) so
    // the death scan sees its keys.
    pm_.mark_dead(dp.node());
    if (lose_volatile) {
        dp.lose_volatile_state();
        // The copies are gone for good, not just unreachable: repair
        // must not count them again after a rejoin.
        pm_.drop_holdings(dp.node());
    }
}

void Cluster::recover_data_provider(std::size_t i) {
    provider::DataProvider& dp = data_provider(i);
    net_.recover(dp.node());
    pm_.mark_alive(dp.node());
}

void Cluster::kill_metadata_provider(std::size_t i, bool lose_state) {
    dht::MetadataProvider& mp = metadata_provider(i);
    net_.kill(mp.node());
    if (lose_state) {
        mp.lose_state();
    }
}

void Cluster::recover_metadata_provider(std::size_t i) {
    net_.recover(metadata_provider(i).node());
}

void Cluster::degrade_data_provider(std::size_t i, double factor,
                                    Duration extra_latency) {
    net_.degrade(data_provider(i).node(), factor, extra_latency);
}

void Cluster::restore_data_provider(std::size_t i) {
    net_.restore(data_provider(i).node());
}

}  // namespace blobseer::core
