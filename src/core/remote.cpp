#include "core/remote.hpp"

#include "rpc/service_client.hpp"
#include "rpc/tcp_transport.hpp"

namespace blobseer::core {

ClientEnv connect_tcp(const std::string& host, std::uint16_t port,
                      const RemoteOptions& options) {
    auto transport = std::make_shared<rpc::TcpTransport>(host, port);
    const rpc::Topology topo = rpc::fetch_topology(*transport);

    // External data providers live in their own daemons, not behind the
    // manager's address; the topology carries their endpoints (v6).
    for (const auto& ep : topo.provider_endpoints) {
        transport->add_peer(
            ep.node,
            rpc::Endpoint{ep.host, static_cast<std::uint16_t>(ep.port)});
    }

    ClientEnv env;
    env.transport = std::move(transport);
    env.self = topo.client_id;
    env.vm_nodes = topo.vm_nodes;
    env.pm_node = topo.pm_node;
    env.data_nodes = topo.data_nodes;
    env.content_addressed = topo.content_addressed;
    for (const NodeId node : topo.meta_nodes) {
        env.meta_ring.add_node(node);
    }
    env.meta_replication = topo.meta_replication;
    env.default_replication = topo.default_replication;
    // Pipelined replication needs the cost model of the simulator; over
    // a real wire every copy leaves this client.
    env.pipelined_replication = false;
    env.meta_cache_nodes = options.meta_cache_nodes;
    env.io_threads = options.io_threads;
    env.max_inflight_chunks = options.max_inflight_chunks;
    env.publish_timeout = milliseconds(topo.publish_timeout_ms);
    env.uid_epoch = topo.uid_epoch;
    return env;
}

}  // namespace blobseer::core
