/// \file client.hpp
/// \brief The BlobSeer client library — the paper's access interface.
///
/// Paper §I-B.1: "A client of BlobSeer manipulates a blob through a simple
/// access interface that enables creating a blob, reading/writing a
/// subsequence of size bytes from/to the blob starting at offset and
/// appending a sequence of size bytes to the blob. This access interface
/// is designed to support versioning explicitly."
///
/// Semantics:
///  * WRITE/APPEND produce a new snapshot version and return its number;
///    only the difference is stored (chunks of the written range + O(log)
///    metadata nodes).
///  * READ addresses any published snapshot; kLatestVersion resolves to
///    the newest published one. Reads of a still-pending version wait for
///    its publication (bounded); reads of aborted versions throw.
///  * All operations are linearizable: writes at their version-manager
///    assign, reads at their version-resolution query.
///
/// Every cross-node operation is an encoded RPC over a pluggable
/// rpc::Transport: in-process deployments inject SimTransport (simulated
/// wire costs, fault injection), remote clients inject TcpTransport
/// against a blobseer_serverd daemon. The client itself is
/// transport-agnostic — it only sees ClientEnv.
///
/// The data path is asynchronous under the hood (DESIGN.md §9): writes
/// and reads stripe their chunk RPCs through a bounded in-flight window
/// (ClientEnv::max_inflight_chunks) on one multiplexed connection per
/// peer, instead of blocking one I/O thread per chunk. write_async/
/// append_async/read_async expose the same overlap across *operations*;
/// the sync calls are their blocking equivalents.
///
/// Alignment contract (see DESIGN.md §4.1): write offsets are
/// chunk-aligned; a write may end unaligned only at (or past) the blob's
/// current end. append() has no alignment restriction — appending to an
/// unaligned end transparently rewrites the trailing chunk (which requires
/// waiting for the predecessor version's publication; chunk-aligned
/// appends never wait).
///
/// CLONE (extension): O(1) snapshot of a published version into a new,
/// independently writable blob sharing all storage with its origin.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/buffer.hpp"
#include "common/clock.hpp"
#include "common/future.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "dht/meta_dht.hpp"
#include "dht/ring.hpp"
#include "meta/meta_cache.hpp"
#include "meta/tree_reader.hpp"
#include "rpc/service_client.hpp"
#include "rpc/transport.hpp"
#include "version/version_manager.hpp"

namespace blobseer::core {

/// Everything a client needs to operate against a deployment, local or
/// remote: a transport, the manager node ids, the DHT membership and the
/// client-side knobs. Cluster::make_client fills this in for in-process
/// deployments; rpc::connect_tcp-style bootstrap (tools/blobseer_cli.cpp)
/// fills it from a kTopology RPC.
struct ClientEnv {
    std::shared_ptr<rpc::Transport> transport;
    NodeId self = kInvalidNode;
    /// Version-manager shard nodes, indexed by shard: per-blob calls
    /// route to vm_nodes[blob_shard(id)].
    std::vector<NodeId> vm_nodes;
    NodeId pm_node = kInvalidNode;
    /// Data-provider nodes (static per deployment). Content-addressed
    /// placement consistent-hashes chunk digests over these so identical
    /// content lands on identical providers regardless of which client
    /// writes it — the property provider-side dedup depends on.
    std::vector<NodeId> data_nodes;
    /// Address chunks by SHA-256 content digest (wire protocol v5):
    /// writes hash each chunk, skip transfers the target already holds,
    /// and every chunk reference is counted for GC. Requires data_nodes.
    bool content_addressed = false;
    /// Metadata DHT membership (static per deployment).
    dht::Ring meta_ring;
    std::uint32_t meta_replication = 1;
    std::uint32_t default_replication = 1;
    bool pipelined_replication = false;
    std::size_t meta_cache_nodes = 4096;
    /// Threads driving whole client-level async operations
    /// (write_async/read_async) — NOT per-chunk transfer parallelism,
    /// which comes from max_inflight_chunks.
    std::size_t io_threads = 4;
    /// Bound on chunk RPCs (puts or gets) a single write/read keeps in
    /// flight at once through the multiplexed transport.
    std::size_t max_inflight_chunks = 64;
    Duration publish_timeout = seconds(30);
    /// Deployment boot epoch for chunk-uid allocation (see next_uid():
    /// client ids repeat across daemon restarts, the epoch must not).
    std::uint64_t uid_epoch = 0;
    /// Originate a sampled distributed trace (protocol v7) around every
    /// top-level write/append/read, so the whole RPC fan-out is
    /// recorded in the deployment's span rings and retrievable with
    /// trace_dump / `blobseer_cli trace`.
    bool trace = false;
};

/// Client-side operation counters surfaced to experiments.
struct ClientStats {
    Counter writes;
    Counter appends;
    Counter reads;
    Counter bytes_written;
    Counter bytes_read;
    Counter chunk_put_rpcs;
    Counter chunk_get_rpcs;
    Counter chunk_retries;  ///< replica failovers (reads + writes)
    /// Reads salvaged by probing providers outside the metadata leaf's
    /// replica list (a repair moved the chunk after the leaf was sealed).
    Counter chunk_locates;
    Counter cas_chunks;         ///< content-addressed chunks uploaded
    Counter cas_dedup_hits;     ///< check-before-push hits (no transfer)
    Counter cas_bytes_skipped;  ///< payload bytes dedup kept off the wire
    Counter cas_bytes_sent;     ///< payload bytes actually transferred
    Counter cas_stream_pushes;  ///< uploads that used the streaming path
    /// Chunk RPCs currently in flight across all of this client's
    /// operations; high_water() reports the deepest window ever reached.
    Gauge inflight_chunk_rpcs;
    Histogram write_latency_us;
    Histogram read_latency_us;
};

/// Data-locality record returned by locate() — the Hadoop-style "which
/// nodes hold this range" API that BSFS exposes to schedulers (§IV-D).
struct SegmentLocation {
    ByteRange range;
    bool hole = false;
    std::vector<NodeId> providers;
};

class Blob;

class BlobSeerClient {
  public:
    /// Built by Cluster::make_client() (SimTransport) or from a fetched
    /// topology (TcpTransport).
    explicit BlobSeerClient(ClientEnv env);

    [[nodiscard]] NodeId node() const noexcept { return env_.self; }

    // ---- blob lifecycle ---------------------------------------------------

    /// Create a blob with the given chunk size; replication defaults to
    /// the cluster's configuration.
    [[nodiscard]] Blob create(std::uint64_t chunk_size,
                              std::optional<std::uint32_t> replication = {});

    /// Open an existing blob by id.
    [[nodiscard]] Blob open(BlobId id);

    /// O(1) clone of (\p src, \p version) into a new blob.
    [[nodiscard]] Blob clone(BlobId src, Version version = kLatestVersion);

    // ---- data path (also reachable through Blob) ----------------------------

    /// Write \p data at \p offset; returns the new snapshot's version.
    Version write(BlobId blob, std::uint64_t offset, ConstBytes data);

    /// Append \p data at the blob's current end.
    Version append(BlobId blob, ConstBytes data);

    /// Read out.size() bytes at \p offset of \p version into \p out.
    /// Returns bytes read (== out.size(); strict bounds). Holes read as
    /// zeros.
    std::size_t read(BlobId blob, Version version, std::uint64_t offset,
                     MutableBytes out);

    /// Clipped read: reads min(out.size(), snapshot_size - offset) bytes.
    std::size_t read_available(BlobId blob, Version version,
                               std::uint64_t offset, MutableBytes out);

    // ---- asynchronous data path -------------------------------------------
    //
    // Each returns immediately; the operation runs on the client's I/O
    // pool and streams its chunks through the bounded in-flight window.
    // The caller must keep the data/out buffer alive and untouched until
    // the future completes; exceptions surface from Future::get() with
    // the same types the sync calls throw.

    /// Start a write; completes with the new snapshot's version.
    [[nodiscard]] Future<Version> write_async(BlobId blob,
                                              std::uint64_t offset,
                                              ConstBytes data);

    /// Start an append; completes with the new snapshot's version.
    [[nodiscard]] Future<Version> append_async(BlobId blob, ConstBytes data);

    /// Start a read; completes with the bytes read (== out.size()).
    [[nodiscard]] Future<std::size_t> read_async(BlobId blob, Version version,
                                                 std::uint64_t offset,
                                                 MutableBytes out);

    /// Snapshot metadata (resolves kLatestVersion).
    [[nodiscard]] version::VersionInfo stat(BlobId blob,
                                            Version version = kLatestVersion);

    /// Block until \p version publishes (or aborts — throws then).
    version::VersionInfo wait_published(BlobId blob, Version version);

    /// Which providers hold each segment of a range (no data transfer).
    [[nodiscard]] std::vector<SegmentLocation> locate(BlobId blob,
                                                      Version version,
                                                      ByteRange range);

    /// Best-effort cleanup of an aborted version's chunks and metadata.
    /// Returns the number of metadata nodes removed.
    std::size_t gc_aborted_version(BlobId blob, Version version);

    // ---- history, diff & retirement ---------------------------------------

    /// Version history of a blob (ascending), clamped to what exists.
    [[nodiscard]] std::vector<version::VersionManager::VersionSummary>
    history(BlobId blob, Version from = 1, Version to = kLatestVersion);

    /// Byte ranges that differ between snapshots \p from and \p to
    /// (from < to): the union of every range written by versions in
    /// (from, to], merged and sorted. O(#versions) — no data is read.
    [[nodiscard]] std::vector<ByteRange> changed_ranges(BlobId blob,
                                                        Version from,
                                                        Version to);

    /// Pin/unpin a published snapshot against retirement.
    void pin(BlobId blob, Version version);
    void unpin(BlobId blob, Version version);

    struct RetireStats {
        std::size_t versions = 0;
        std::size_t meta_nodes = 0;
        std::size_t chunks = 0;
    };

    /// Retire every unpinned snapshot older than \p keep_from and
    /// physically reclaim the chunks and metadata nodes no surviving
    /// snapshot references. See VersionManager::retire for semantics.
    RetireStats retire_versions(BlobId blob, Version keep_from);

    struct DeleteStats {
        std::size_t versions = 0;    ///< snapshots torn down
        std::size_t meta_nodes = 0;  ///< metadata nodes erased
        std::size_t chunks = 0;      ///< chunk references released
    };

    /// Delete a blob's storage: retire its unpinned history, then walk
    /// the latest snapshot's tree releasing one reference per chunk
    /// replica and erasing every metadata node this blob owns. Subtrees
    /// borrowed across a clone boundary (ChildRef.blob differs) are
    /// skipped — the origin blob still owns those references, which is
    /// exactly why content-addressed chunks are reference-counted:
    /// deleting one of two blobs holding identical data reclaims only
    /// the deleted blob's references, never the survivor's bytes.
    /// Deleting a blob that other blobs were cloned from while those
    /// clones are still alive is undefined (pin the cloned version).
    DeleteStats delete_blob(BlobId blob);

    // ---- QoS feedback ----------------------------------------------------------

    /// Install a provider-health snapshot (pushed by the QoS feedback
    /// loop, §IV-E). Reads prefer replicas on healthy providers;
    /// providers below 0.5 are used only when no healthy replica
    /// responds.
    void update_health_view(std::unordered_map<NodeId, double> view);

    // ---- introspection ---------------------------------------------------------

    [[nodiscard]] const ClientStats& stats() const noexcept { return stats_; }
    /// Trace id of the most recent traced operation (0 when tracing is
    /// off or nothing ran yet) — what `blobseer_cli --trace` prints and
    /// then feeds to trace_dump.
    [[nodiscard]] std::uint64_t last_trace_id() const noexcept {
        return last_trace_id_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] meta::MetaCache& meta_cache() noexcept { return cache_; }
    [[nodiscard]] rpc::ServiceClient& services() noexcept { return svc_; }
    /// The deployment's data-provider nodes (dedup-stats sweeps them).
    [[nodiscard]] const std::vector<NodeId>& data_nodes() const noexcept {
        return env_.data_nodes;
    }
    /// True when this client writes content-addressed chunks.
    [[nodiscard]] bool content_addressed() const noexcept {
        return cas_enabled();
    }

  private:
    friend class Blob;

    struct UploadedChunk {
        chunk::ChunkKey key{};
        std::vector<NodeId> replicas;
        std::uint32_t bytes = 0;
    };

    /// Shared implementation of write/append.
    Version write_impl(BlobId blob, std::optional<std::uint64_t> offset,
                       ConstBytes data);

    /// Upload every chunk payload to its planned replicas through the
    /// bounded in-flight window, with failover re-placement on provider
    /// death. Returns the achieved replica sets in \p parts order.
    std::vector<UploadedChunk> upload_all(
        BlobId blob, const std::vector<ConstBytes>& parts,
        const provider::PlacementPlan& plan);

    /// Content-addressed upload (protocol v5): hash each part, place its
    /// replicas by consistent-hashing the digest over the data ring, and
    /// for each target check-before-push — a hit records the reference
    /// server-side and skips the transfer, a miss pushes the bytes
    /// (streaming for large parts). Returns replica sets in parts order.
    std::vector<UploadedChunk> upload_all_cas(
        const std::vector<ConstBytes>& parts, std::uint32_t replication);

    /// True when this client writes content-addressed chunks.
    [[nodiscard]] bool cas_enabled() const noexcept {
        return env_.content_addressed && data_ring_.node_count() > 0;
    }

    /// delete_blob's tree walk: depth-first over this blob's own nodes,
    /// releasing leaf chunk references and erasing the nodes behind it.
    void delete_walk(BlobId blob, const meta::ChildRef& ref,
                     const meta::SlotRange& r, DeleteStats& out);

    /// Fetch every non-hole segment of a read plan into its slice of
    /// \p out, windowed, with per-segment replica failover.
    void fetch_all(const std::vector<meta::ReadSegment>& segments,
                   std::uint64_t offset, MutableBytes out);

    /// Replica preference order for one segment: load-spread start
    /// rotation, healthy providers first.
    [[nodiscard]] std::vector<NodeId> replica_order(
        const meta::ReadSegment& seg) const;

    /// Fetch the chunk slice a read segment needs into \p out
    /// (sequential; the tail-merge path uses it).
    void fetch_segment(const meta::ReadSegment& seg, MutableBytes out);

    /// Last-resort chunk locate: probe every data node NOT on the leaf's
    /// replica list. Metadata leaves are sealed at write time, so when
    /// repair re-replicated a chunk after its holders died the live
    /// copies sit on nodes the leaf does not name. Returns true when a
    /// probe produced the bytes.
    bool fetch_from_any_provider(const meta::ReadSegment& seg,
                                 MutableBytes out);

    /// Best-effort failure report to the provider manager (protocol v6):
    /// the manager corroborates against heartbeats and triggers repair
    /// if the death is real. Deduplicated per client so a wide read over
    /// a dead provider costs one RPC, not one per chunk.
    void report_provider_failure(NodeId target);

    /// Run \p fn on the I/O pool, surfacing its result as a Future.
    template <typename T, typename F>
    [[nodiscard]] Future<T> submit_async(F fn) {
        auto promise = std::make_shared<Promise<T>>();
        Future<T> fut = promise->future();
        io_pool_.post([promise, fn = std::move(fn)]() mutable {
            try {
                promise->set_value(fn());
            } catch (...) {
                promise->set_exception(std::current_exception());
            }
        });
        return fut;
    }

    /// Read the published predecessor's bytes [slot_start,
    /// slot_start+out.size()) for the unaligned-append merge.
    void read_tail_for_merge(BlobId blob, const version::VersionInfo& vi,
                             std::uint64_t slot_start, MutableBytes out);

    /// Fresh globally-unique chunk id.
    [[nodiscard]] std::uint64_t next_uid();

    /// Blob parameters are immutable, so they are fetched once and cached.
    version::BlobInfo blob_info(BlobId blob);

    /// A published snapshot's info (size, tree ref) can never change;
    /// cache it so pinned-version reads skip the version-manager RPC.
    std::optional<version::VersionInfo> cached_version(BlobId blob,
                                                       Version v);
    void remember_version(BlobId blob, const version::VersionInfo& vi);

    const ClientEnv env_;
    rpc::ServiceClient svc_;
    dht::MetaDht dht_;
    meta::MetaCache cache_;
    /// Ring over env_.data_nodes for content-addressed placement (empty
    /// when the deployment is not content-addressed).
    dht::Ring data_ring_;
    /// 64-bit allocation counter (a 32-bit one silently wraps after 2^32
    /// chunks and recycles uids — see next_uid()).
    std::atomic<std::uint64_t> uid_counter_{0};
    ClientStats stats_;
    /// Registry bindings for stats_; declared right after it so they
    /// unbind before the counters destruct.
    MetricsGroup metrics_;
    std::atomic<std::uint64_t> last_trace_id_{0};

    std::mutex info_mu_;  // guards info_cache_ and version_cache_
    std::unordered_map<BlobId, version::BlobInfo> info_cache_;
    std::map<std::pair<BlobId, Version>, version::VersionInfo>
        version_cache_;

    mutable std::mutex health_mu_;  // guards health_view_
    std::unordered_map<NodeId, double> health_view_;

    std::mutex reported_mu_;  // guards reported_dead_
    /// Providers this client already reported as failed (cleared when a
    /// later call to them succeeds is unnecessary: the manager's own
    /// membership decides revival, a stale local entry only suppresses
    /// duplicate reports).
    std::unordered_set<NodeId> reported_dead_;

    /// Declared LAST: its destructor drains queued write_async/
    /// read_async tasks, which touch stats_, the caches and their
    /// mutexes — all of which must still be alive (members are
    /// destroyed in reverse declaration order).
    ThreadPool io_pool_;

    [[nodiscard]] bool is_healthy(NodeId node) const;
};

/// Convenience handle combining a client and a blob id.
class Blob {
  public:
    Blob(BlobSeerClient& client, version::BlobInfo info)
        : client_(&client), info_(info) {}

    [[nodiscard]] BlobId id() const noexcept { return info_.id; }
    [[nodiscard]] std::uint64_t chunk_size() const noexcept {
        return info_.chunk_size;
    }
    [[nodiscard]] std::uint32_t replication() const noexcept {
        return info_.replication;
    }

    Version write(std::uint64_t offset, ConstBytes data) {
        return client_->write(info_.id, offset, data);
    }
    Version append(ConstBytes data) {
        return client_->append(info_.id, data);
    }
    std::size_t read(Version version, std::uint64_t offset,
                     MutableBytes out) {
        return client_->read(info_.id, version, offset, out);
    }
    /// Async variants; buffer-lifetime rules of BlobSeerClient apply.
    [[nodiscard]] Future<Version> write_async(std::uint64_t offset,
                                              ConstBytes data) {
        return client_->write_async(info_.id, offset, data);
    }
    [[nodiscard]] Future<Version> append_async(ConstBytes data) {
        return client_->append_async(info_.id, data);
    }
    [[nodiscard]] Future<std::size_t> read_async(Version version,
                                                 std::uint64_t offset,
                                                 MutableBytes out) {
        return client_->read_async(info_.id, version, offset, out);
    }
    [[nodiscard]] version::VersionInfo stat(
        Version version = kLatestVersion) {
        return client_->stat(info_.id, version);
    }
    /// Size of the latest published snapshot.
    [[nodiscard]] std::uint64_t size() { return stat().size; }
    /// Latest published version.
    [[nodiscard]] Version latest() { return stat().version; }

  private:
    BlobSeerClient* client_;
    version::BlobInfo info_;
};

}  // namespace blobseer::core
