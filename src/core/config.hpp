/// \file config.hpp
/// \brief Cluster-wide configuration.
///
/// One struct drives every deployment knob the experiments sweep:
/// provider counts (striping width), metadata decentralization degree,
/// placement strategy, storage backend, replication, network costs and
/// client-side caching. EXPERIMENTS.md documents which knobs each bench
/// varies.

#pragma once

#include <cstdint>
#include <filesystem>

#include "common/clock.hpp"
#include "net/sim_network.hpp"
#include "provider/provider_manager.hpp"

namespace blobseer::core {

/// Which chunk-store backend data providers run.
enum class StoreBackend : std::uint8_t {
    kRam,         ///< the paper's initial RAM-only prototype (§IV-A)
    kDisk,        ///< persistent file-per-chunk storage (§IV-B)
    kTwoTier,     ///< disk with a RAM cache on top (§IV-B)
    kLog,         ///< log-structured engine (DESIGN.md §8)
    kTwoTierLog,  ///< log engine with a RAM cache on top
    /// Log engine with a compressed file-cache middle tier under the RAM
    /// cache (DESIGN.md §14): RAM evictions demote into the file cache,
    /// hits promote back, so working sets well past the RAM budget stay
    /// off the engine-read path.
    kThreeTierLog,
};

struct ClusterConfig {
    /// Number of data providers (striping width).
    std::size_t data_providers = 8;
    /// Number of metadata providers forming the DHT; 1 = the centralized
    /// baseline of §IV-C.
    std::size_t metadata_providers = 4;

    /// Number of version-manager shards. Each shard owns the blobs whose
    /// id it minted (the shard index rides in the top byte of every
    /// BlobId) and serializes only them; clients route per-blob calls to
    /// the owning shard. 1 = the paper's single version manager, and is
    /// bit-compatible with the unsharded blob-id space.
    std::size_t num_version_managers = 1;

    /// Chunk replica copies for new blobs (per-blob override at create()).
    std::uint32_t default_replication = 1;
    /// Copies of each metadata tree node in the DHT.
    std::uint32_t meta_replication = 1;

    provider::PlacementStrategy placement =
        provider::PlacementStrategy::kRoundRobin;

    /// Content-addressed storage (DESIGN.md §11): clients address chunks
    /// by SHA-256 digest, place them by consistent-hashing the digest
    /// over the data providers, skip transfers the target already holds
    /// (check-before-push) and reference-count every chunk so deletion
    /// reclaims space without corrupting deduplicated data.
    bool content_addressed = false;

    /// Interconnect model (latency + per-NIC bandwidth).
    net::NetworkConfig network;

    /// Service capacity of each metadata provider in ops/second
    /// (0 = infinite). The knob that makes centralization hurt.
    std::uint64_t meta_ops_per_second = 0;

    StoreBackend store = StoreBackend::kRam;
    /// Root directory for kDisk/kTwoTier backends.
    std::filesystem::path disk_root = "/tmp/blobseer-store";
    /// RAM budget of the two-tier cache per provider (bytes).
    std::uint64_t ram_cache_budget = 64ULL << 20;

    /// kThreeTierLog only: byte budget of the compressed file cache per
    /// provider. Evicted RAM entries are demoted here (LZ4-compressed,
    /// CRC-checked) and promoted back on hit. The cache is disposable —
    /// deleting its directory loses no data.
    std::uint64_t file_cache_budget = 256ULL << 20;
    /// kThreeTierLog only: root directory for per-provider file caches
    /// (provider i uses file_cache_dir / "dp-<i>"). Empty = put them
    /// under disk_root / "file-cache".
    std::filesystem::path file_cache_dir;
    /// Log-family backends: recompress cold records at compaction time
    /// (engine format v2, DESIGN.md §14.3). Off by default so existing
    /// deployments keep producing byte-identical v1 files.
    bool compress_cold_segments = false;

    /// Metadata durability: RAM-only (the paper's initial prototype),
    /// file-per-node with a RAM cache (§IV-B's persistent metadata), or
    /// the log-structured engine (DESIGN.md §8). Durable metadata lives
    /// under disk_root / "mp-<i>".
    enum class MetaBackend : std::uint8_t { kRam, kDisk, kLog };
    MetaBackend meta_store = MetaBackend::kRam;

    /// Persist version-manager state by journaling its operations through
    /// a log engine at disk_root / "vm", replayed when the cluster is
    /// constructed. Combined with a durable store and metadata backend
    /// this makes a full daemon restart on the same disk_root recover
    /// every published blob end-to-end.
    bool durable_version_manager = false;

    /// Replica transfer topology. Direct: the client sends every copy
    /// itself (simple, costs r x client uplink). Pipelined: the client
    /// sends one copy and providers forward along the chain
    /// (GFS/HDFS-style), trading client bandwidth for chain latency —
    /// ablation A2 measures the difference.
    bool pipelined_replication = false;

    /// Client-side metadata cache capacity in nodes; 0 disables (the
    /// ablation of §IV-A / experiment E2).
    std::size_t client_meta_cache_nodes = 4096;
    /// Threads driving whole client-level async operations.
    std::size_t client_io_threads = 4;
    /// Bound on chunk RPCs one client write/read keeps in flight at
    /// once (the async window; see ClientEnv::max_inflight_chunks).
    std::size_t client_max_inflight_chunks = 64;
    /// Minted clients originate a sampled distributed trace per
    /// top-level write/append/read (ClientEnv::trace).
    bool client_trace = false;

    /// How long a reader waits for a pending version to publish before
    /// giving up, and how long the unaligned-append path waits for its
    /// predecessor.
    Duration publish_timeout = seconds(30);

    /// Membership (DESIGN.md §12). A provider missing heartbeats for
    /// this long is declared dead and its chunks enter the repair queue;
    /// 0 disables the sweep (tests drive check_heartbeats with virtual
    /// time, and in-process providers never beat).
    Duration heartbeat_timeout = Duration::zero();
    /// Background repair-worker drain period; 0 = no background worker
    /// (tests call Cluster::drain_repairs() synchronously).
    Duration repair_interval = Duration::zero();

    /// Seed for every deterministic random decision in the cluster.
    std::uint64_t seed = 42;
};

}  // namespace blobseer::core
