#include "core/client.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <thread>

#include "cas/sha256.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/trace.hpp"
#include "meta/tree_builder.hpp"

namespace blobseer::core {

namespace {

/// Parts above this size upload through the streaming push RPCs instead
/// of one whole-frame put — chunk size is then bounded by provider
/// memory, not by the wire's frame limit.
constexpr std::size_t kStreamThresholdBytes = 4u << 20;
/// Slice size of a streaming push (bounded per-frame memory).
constexpr std::size_t kStreamSliceBytes = 1u << 20;

/// Root span of one traced top-level operation. Mints a fresh sampled
/// trace context, installs it for the calling thread (every nested RPC
/// the operation issues propagates it on the wire), and records the
/// root client span on destruction. Inert when tracing is off or when
/// the thread is already inside a traced operation — nesting keeps the
/// outer root.
class RootTrace {
  public:
    RootTrace(bool enabled, const char* op, NodeId node,
              std::atomic<std::uint64_t>& last_trace_id)
        : active_(enabled && !trace::current().active()), op_(op),
          node_(node) {
        if (!active_) {
            return;
        }
        trace::TraceContext ctx;
        ctx.trace_id = trace::new_trace_id();
        ctx.span_id = trace::new_span_id();
        ctx.flags = trace::TraceContext::kSampled;
        last_trace_id.store(ctx.trace_id, std::memory_order_relaxed);
        start_unix_us_ = trace::now_unix_us();
        scope_.emplace(ctx);
    }

    ~RootTrace() {
        if (!active_) {
            return;
        }
        const trace::TraceContext ctx = trace::current();
        trace::SpanRecord rec;
        rec.trace_id = ctx.trace_id;
        rec.span_id = ctx.span_id;
        rec.parent_span = 0;
        rec.start_unix_us = start_unix_us_;
        rec.duration_us = trace::now_unix_us() - start_unix_us_;
        rec.node = node_;
        rec.kind = trace::SpanRecord::kClient;
        rec.status = std::uncaught_exceptions() > 0 ? 1 : 0;
        rec.set_op(op_);
        trace::buffer().record(rec);
    }

    RootTrace(const RootTrace&) = delete;
    RootTrace& operator=(const RootTrace&) = delete;

  private:
    bool active_;
    const char* op_;
    NodeId node_;
    std::uint64_t start_unix_us_ = 0;
    std::optional<trace::TraceScope> scope_;
};

}  // namespace

BlobSeerClient::BlobSeerClient(ClientEnv env)
    : env_(std::move(env)),
      svc_(*env_.transport, env_.vm_nodes, env_.pm_node, env_.self),
      dht_(svc_, env_.meta_ring, env_.meta_replication),
      cache_(dht_, env_.meta_cache_nodes),
      io_pool_(env_.io_threads) {
    // next_uid() packs the client id into 24 bits; a wider id would
    // silently truncate and could collide chunk uids across clients.
    // Simulated node ids stay tiny and the dispatcher mints remote ids
    // from 2^20 upward, so this fires only after ~16M handshakes.
    if (env_.self >= (1u << 24)) {
        throw InvalidArgument("client node id " +
                              std::to_string(env_.self) +
                              " exceeds the 24-bit uid namespace");
    }
    // Counter layout: [epoch:12][allocation:28] (see next_uid). A
    // restarted deployment re-mints the same client ids, so the boot
    // epoch must separate their uid spaces.
    if (env_.uid_epoch >= (1u << 12)) {
        throw InvalidArgument("uid epoch " +
                              std::to_string(env_.uid_epoch) +
                              " exceeds the 12-bit epoch namespace");
    }
    uid_counter_.store(env_.uid_epoch << 28);
    for (const NodeId node : env_.data_nodes) {
        data_ring_.add_node(node);
    }

    const MetricLabels labels{{"node", std::to_string(env_.self)}};
    metrics_.counter("client_writes_total", labels, stats_.writes);
    metrics_.counter("client_appends_total", labels, stats_.appends);
    metrics_.counter("client_reads_total", labels, stats_.reads);
    metrics_.counter("client_bytes_written_total", labels,
                     stats_.bytes_written);
    metrics_.counter("client_bytes_read_total", labels, stats_.bytes_read);
    metrics_.counter("client_chunk_put_rpcs_total", labels,
                     stats_.chunk_put_rpcs);
    metrics_.counter("client_chunk_get_rpcs_total", labels,
                     stats_.chunk_get_rpcs);
    metrics_.counter("client_chunk_retries_total", labels,
                     stats_.chunk_retries);
    metrics_.counter("client_chunk_locates_total", labels,
                     stats_.chunk_locates);
    metrics_.counter("client_cas_chunks_total", labels, stats_.cas_chunks);
    metrics_.counter("client_cas_dedup_hits_total", labels,
                     stats_.cas_dedup_hits);
    metrics_.counter("client_cas_bytes_skipped_total", labels,
                     stats_.cas_bytes_skipped);
    metrics_.counter("client_cas_bytes_sent_total", labels,
                     stats_.cas_bytes_sent);
    metrics_.counter("client_cas_stream_pushes_total", labels,
                     stats_.cas_stream_pushes);
    metrics_.gauge("client_inflight_chunk_rpcs", labels,
                   stats_.inflight_chunk_rpcs);
    metrics_.histogram("client_write_latency_us", labels,
                       stats_.write_latency_us);
    metrics_.histogram("client_read_latency_us", labels,
                       stats_.read_latency_us);
}

// ---- blob lifecycle ------------------------------------------------------

Blob BlobSeerClient::create(std::uint64_t chunk_size,
                            std::optional<std::uint32_t> replication) {
    const std::uint32_t repl =
        replication.value_or(env_.default_replication);
    const auto info = svc_.create_blob(chunk_size, repl);
    {
        const std::scoped_lock lock(info_mu_);
        info_cache_[info.id] = info;
    }
    return Blob(*this, info);
}

Blob BlobSeerClient::open(BlobId id) { return Blob(*this, blob_info(id)); }

Blob BlobSeerClient::clone(BlobId src, Version version) {
    version::BlobInfo info;
    if (svc_.vm_nodes().size() == 1) {
        // Single shard: source and destination share a version manager,
        // one RPC does everything atomically.
        info = svc_.clone_blob(src, version);
    } else {
        // Cross-shard protocol (DESIGN.md §10.3): the destination shard
        // cannot see the source blob, so the client resolves the
        // published snapshot on the owning shard, pins it there (clones
        // read through their origin's tree forever), and hands the
        // resolved TreeRef to the destination shard.
        const auto src_info = blob_info(src);  // missing blob throws here
        version::VersionInfo vi;
        try {
            vi = svc_.get_version(src, version);
        } catch (const NotFoundError&) {
            // The blob exists (resolved above), so the version is just
            // not assigned yet — same contract as the single-shard
            // clone_blob path.
            throw InvalidArgument("cannot clone unpublished version " +
                                  std::to_string(version));
        }
        bool pinned_here = false;
        if (vi.version > 0) {
            if (vi.status == version::VersionStatus::kPending ||
                vi.status == version::VersionStatus::kCommitted) {
                throw InvalidArgument("cannot clone unpublished version " +
                                      std::to_string(vi.version));
            }
            if (vi.status != version::VersionStatus::kPublished) {
                throw VersionAborted(
                    "cannot clone " + std::string(to_string(vi.status)) +
                    " version " + std::to_string(vi.version));
            }
            (void)svc_.pin(src, vi.version);
            pinned_here = true;
        }
        try {
            info = svc_.clone_from(src_info.chunk_size,
                                   src_info.replication, vi.tree);
        } catch (...) {
            // Abandoned clone: drop the pin count this attempt added so
            // retirement of the source is not blocked forever. Pins
            // nest (VersionManager::pin), so this can never strip a
            // concurrent cloner's protection.
            if (pinned_here) {
                try {
                    svc_.unpin(src, vi.version);
                } catch (const Error&) {
                    // Best effort; a leaked pin only delays reclamation.
                }
            }
            throw;
        }
    }
    {
        const std::scoped_lock lock(info_mu_);
        info_cache_[info.id] = info;
    }
    return Blob(*this, info);
}

std::optional<version::VersionInfo> BlobSeerClient::cached_version(
    BlobId blob, Version v) {
    const std::scoped_lock lock(info_mu_);
    const auto it = version_cache_.find({blob, v});
    if (it == version_cache_.end()) {
        return std::nullopt;
    }
    return it->second;
}

void BlobSeerClient::remember_version(BlobId blob,
                                      const version::VersionInfo& vi) {
    if (vi.status != version::VersionStatus::kPublished) {
        return;  // only immutable facts are cacheable
    }
    const std::scoped_lock lock(info_mu_);
    version_cache_.emplace(std::pair{blob, vi.version}, vi);
}

version::BlobInfo BlobSeerClient::blob_info(BlobId blob) {
    {
        const std::scoped_lock lock(info_mu_);
        const auto it = info_cache_.find(blob);
        if (it != info_cache_.end()) {
            return it->second;
        }
    }
    const auto info = svc_.blob_info(blob);
    const std::scoped_lock lock(info_mu_);
    info_cache_[blob] = info;
    return info;
}

std::uint64_t BlobSeerClient::next_uid() {
    // Pack (client, boot epoch, allocation#) into 64 bits — 24 high
    // bits of client identity (bounded in the constructor), then a
    // 40-bit counter pre-seeded with the deployment boot epoch in its
    // top 12 bits ([epoch:12][alloc:28]): durable deployments re-mint
    // the same client ids after a restart, and the epoch keeps their
    // uid spaces disjoint (2^28 chunks per client per boot, 4095
    // boots). mix64 is a bijection, so uids stay collision-free while
    // the packed input is unique.
    const std::uint64_t n = uid_counter_.fetch_add(1);
    // Durable deployments (epoch >= 1): crossing into the next epoch's
    // block would silently re-mint uids a future boot will also mint —
    // fail loudly instead. Volatile deployments never mint an epoch and
    // keep the full 2^40 counter space.
    if (env_.uid_epoch != 0 && (n >> 28) != env_.uid_epoch) {
        throw Error("client " + std::to_string(env_.self) +
                    " exhausted its 2^28 chunk-uid allocations for boot "
                    "epoch " +
                    std::to_string(env_.uid_epoch));
    }
    return mix64((static_cast<std::uint64_t>(env_.self) << 40) |
                 (n & ((1ULL << 40) - 1)));
}

// ---- write path -----------------------------------------------------------

Version BlobSeerClient::write(BlobId blob, std::uint64_t offset,
                              ConstBytes data) {
    const Version v = write_impl(blob, offset, data);
    stats_.writes.add();
    stats_.bytes_written.add(data.size());
    return v;
}

Version BlobSeerClient::append(BlobId blob, ConstBytes data) {
    const Version v = write_impl(blob, std::nullopt, data);
    stats_.appends.add();
    stats_.bytes_written.add(data.size());
    return v;
}

std::vector<BlobSeerClient::UploadedChunk> BlobSeerClient::upload_all(
    BlobId blob, const std::vector<ConstBytes>& parts,
    const provider::PlacementPlan& plan) {
    const bool pipelined = env_.pipelined_replication;
    const std::size_t window_cap =
        std::max<std::size_t>(1, env_.max_inflight_chunks);

    // Per-chunk upload state machine, driven entirely by this thread:
    // puts are *issued* asynchronously (up to window_cap in flight at
    // once over the multiplexed transport) and *collected* oldest-first,
    // so failover — mark the provider dead, ask for a replacement
    // target, re-issue — runs on the collecting thread while the rest
    // of the window keeps streaming.
    struct State {
        ConstBytes payload;
        chunk::ChunkKey key{};
        std::vector<NodeId> targets;
        std::size_t next_target = 0;
        std::size_t in_flight = 0;
        std::size_t replacement_budget = 3;
        bool runnable_queued = false;
        UploadedChunk result;
    };
    std::vector<State> states(parts.size());
    for (std::size_t i = 0; i < parts.size(); ++i) {
        State& st = states[i];
        st.payload = parts[i];
        st.targets = plan[i];
        st.key = chunk::ChunkKey{blob, next_uid()};
        st.result.key = st.key;
        st.result.bytes = static_cast<std::uint32_t>(parts[i].size());
    }

    struct PendingPut {
        Future<void> fut;
        std::size_t chunk = 0;
        NodeId target = kInvalidNode;
    };
    std::deque<PendingPut> window;
    std::deque<std::size_t> runnable;

    auto can_issue = [&](const State& st) {
        if (st.next_target >= st.targets.size()) {
            return false;
        }
        // Pipelined replication chains copies provider-to-provider, so
        // a chunk's next copy needs the previous one acknowledged; a
        // fan-out put has no such dependency.
        return !pipelined || st.in_flight == 0;
    };

    auto enqueue = [&](std::size_t idx) {
        if (!states[idx].runnable_queued && can_issue(states[idx])) {
            states[idx].runnable_queued = true;
            runnable.push_back(idx);
        }
    };
    for (std::size_t i = 0; i < states.size(); ++i) {
        enqueue(i);
    }

    auto handle_failure = [&](State& st, NodeId target,
                              const std::string& what) {
        stats_.chunk_retries.add();
        log_debug("client", "chunk put failed: " + what);
        // Tell the provider manager so it can corroborate the death and
        // start repair, then ask it for a replacement target (bounded).
        report_provider_failure(target);
        if (st.replacement_budget > 0) {
            --st.replacement_budget;
            try {
                auto fresh_plan = svc_.place(1, 1, st.payload.size());
                const NodeId fresh = fresh_plan.at(0).at(0);
                if (std::find(st.targets.begin(), st.targets.end(),
                              fresh) == st.targets.end() &&
                    std::find(st.result.replicas.begin(),
                              st.result.replicas.end(),
                              fresh) == st.result.replicas.end()) {
                    st.targets.push_back(fresh);
                }
            } catch (const Error&) {
                // No replacement available; degrade replication.
            }
        }
    };

    auto issue_one = [&](std::size_t idx) {
        State& st = states[idx];
        const NodeId target = st.targets[st.next_target++];
        // Pipelined replication: the first copy leaves the client; each
        // further copy is forwarded provider-to-provider (the previous
        // chain member's NIC pays, not the client's — GFS-style).
        const NodeId via = pipelined && !st.result.replicas.empty()
                               ? st.result.replicas.back()
                               : kInvalidNode;
        Future<void> fut;
        try {
            fut = svc_.put_chunk_async(target, st.key, st.payload, via);
        } catch (const RpcError& e) {
            // call_async can fail synchronously (connection refused,
            // resolve failure): same failover as an async failure.
            handle_failure(st, target, e.what());
            return;
        }
        stats_.inflight_chunk_rpcs.add();
        window.push_back(PendingPut{std::move(fut), idx, target});
        ++st.in_flight;
    };

    auto pump = [&] {
        while (window.size() < window_cap && !runnable.empty()) {
            const std::size_t idx = runnable.front();
            if (!can_issue(states[idx])) {
                states[idx].runnable_queued = false;
                runnable.pop_front();
                continue;
            }
            issue_one(idx);
            if (!can_issue(states[idx])) {
                states[idx].runnable_queued = false;
                runnable.pop_front();
            }
        }
    };

    auto collect_one = [&] {
        PendingPut put = std::move(window.front());
        window.pop_front();
        State& st = states[put.chunk];
        --st.in_flight;
        stats_.inflight_chunk_rpcs.sub();
        try {
            put.fut.get();
            st.result.replicas.push_back(put.target);
            stats_.chunk_put_rpcs.add();
        } catch (const RpcError& e) {
            handle_failure(st, put.target, e.what());
        }
        enqueue(put.chunk);
    };

    try {
        for (;;) {
            pump();
            if (window.empty()) {
                break;
            }
            collect_one();
        }
    } catch (...) {
        // A non-RpcError escaped (decode bug, consistency violation):
        // drain the window before unwinding — the futures reference the
        // caller's payload spans and the in-flight gauge must balance.
        while (!window.empty()) {
            stats_.inflight_chunk_rpcs.sub();
            try {
                window.front().fut.get();
            } catch (...) {
                // Already propagating the first failure.
            }
            window.pop_front();
        }
        throw;
    }

    std::vector<UploadedChunk> out;
    out.reserve(states.size());
    for (State& st : states) {
        if (st.result.replicas.empty()) {
            throw RpcError("no replica stored for " + st.key.to_string());
        }
        out.push_back(std::move(st.result));
    }
    return out;
}

std::vector<BlobSeerClient::UploadedChunk> BlobSeerClient::upload_all_cas(
    const std::vector<ConstBytes>& parts, std::uint32_t replication) {
    const std::size_t window_cap =
        std::max<std::size_t>(1, env_.max_inflight_chunks);

    // Content-addressed variant of upload_all. Targets come from the
    // data ring, not the provider manager: identical content must land
    // on identical providers or check-before-push never hits. Every
    // target is first asked whether it already holds the digest
    // (want_incref — a hit records this write's reference server-side);
    // only misses transfer bytes. Replication fans out directly (each
    // target needs its own check), so no pipelined chaining here.
    struct State {
        ConstBytes payload;
        chunk::ChunkKey key{};
        std::vector<NodeId> targets;
        std::size_t next_target = 0;
        UploadedChunk result;
    };
    std::vector<State> states(parts.size());
    for (std::size_t i = 0; i < parts.size(); ++i) {
        State& st = states[i];
        st.payload = parts[i];
        const auto [hi, lo] = cas::digest128(cas::sha256(parts[i]));
        st.key = chunk::ChunkKey::content(hi, lo);
        st.targets = data_ring_.owners(st.key.hash(), replication);
        st.result.key = st.key;
        st.result.bytes = static_cast<std::uint32_t>(parts[i].size());
        stats_.cas_chunks.add();
    }

    struct Pending {
        Future<bool> check;
        Future<void> put;
        bool is_check = true;
        std::size_t chunk = 0;
        NodeId target = kInvalidNode;
    };
    std::deque<Pending> window;

    auto handle_failure = [&](NodeId target, const std::string& what) {
        stats_.chunk_retries.add();
        log_debug("client", "cas chunk transfer failed: " + what);
        report_provider_failure(target);
    };

    // Issue the next target's check for one chunk, if any remain.
    auto issue_check = [&](std::size_t idx) {
        State& st = states[idx];
        while (st.next_target < st.targets.size()) {
            const NodeId target = st.targets[st.next_target++];
            Pending p;
            p.chunk = idx;
            p.target = target;
            try {
                p.check = svc_.check_chunk_async(target, st.key, true,
                                                 st.payload.size());
            } catch (const RpcError& e) {
                handle_failure(target, e.what());
                continue;
            }
            stats_.inflight_chunk_rpcs.add();
            window.push_back(std::move(p));
            return;
        }
    };

    // The check came back a miss: ship the bytes. Large parts stream
    // (synchronously — one bounded session at a time from this client),
    // small ones ride a single async put through the window.
    auto transfer = [&](std::size_t idx, NodeId target) {
        State& st = states[idx];
        if (st.payload.size() > kStreamThresholdBytes) {
            try {
                svc_.push_chunk(target, st.key, st.payload,
                                kStreamSliceBytes);
            } catch (const RpcError& e) {
                handle_failure(target, e.what());
                issue_check(idx);
                return;
            }
            st.result.replicas.push_back(target);
            stats_.chunk_put_rpcs.add();
            stats_.cas_stream_pushes.add();
            stats_.cas_bytes_sent.add(st.payload.size());
            issue_check(idx);  // next replica target, if any
            return;
        }
        Pending p;
        p.is_check = false;
        p.chunk = idx;
        p.target = target;
        try {
            p.put = svc_.put_chunk_async(target, st.key, st.payload);
        } catch (const RpcError& e) {
            handle_failure(target, e.what());
            issue_check(idx);
            return;
        }
        stats_.inflight_chunk_rpcs.add();
        window.push_back(std::move(p));
    };

    auto collect_one = [&] {
        Pending p = std::move(window.front());
        window.pop_front();
        State& st = states[p.chunk];
        stats_.inflight_chunk_rpcs.sub();
        if (p.is_check) {
            bool present = false;
            try {
                present = p.check.get();
            } catch (const RpcError& e) {
                handle_failure(p.target, e.what());
                issue_check(p.chunk);
                return;
            }
            if (present) {
                // Reference already recorded provider-side (want_incref).
                st.result.replicas.push_back(p.target);
                stats_.cas_dedup_hits.add();
                stats_.cas_bytes_skipped.add(st.payload.size());
                issue_check(p.chunk);  // next replica target, if any
            } else {
                transfer(p.chunk, p.target);
            }
            return;
        }
        try {
            p.put.get();
            st.result.replicas.push_back(p.target);
            stats_.chunk_put_rpcs.add();
            stats_.cas_bytes_sent.add(st.payload.size());
            issue_check(p.chunk);  // next replica target, if any
        } catch (const RpcError& e) {
            handle_failure(p.target, e.what());
            issue_check(p.chunk);
        }
    };

    std::size_t next_start = 0;  // first chunk not yet started
    try {
        for (;;) {
            while (window.size() < window_cap &&
                   next_start < states.size()) {
                issue_check(next_start++);
            }
            if (window.empty()) {
                break;
            }
            collect_one();
        }
    } catch (...) {
        // A non-RpcError escaped: drain the window before unwinding —
        // the futures reference the caller's payload spans and the
        // in-flight gauge must balance.
        while (!window.empty()) {
            stats_.inflight_chunk_rpcs.sub();
            Pending& p = window.front();
            try {
                if (p.is_check) {
                    (void)p.check.get();
                } else {
                    p.put.get();
                }
            } catch (...) {
                // Already propagating the first failure.
            }
            window.pop_front();
        }
        throw;
    }

    std::vector<UploadedChunk> out;
    out.reserve(states.size());
    for (State& st : states) {
        if (st.result.replicas.empty()) {
            throw RpcError("no replica stored for " + st.key.to_string());
        }
        out.push_back(std::move(st.result));
    }
    return out;
}

Version BlobSeerClient::write_impl(BlobId blob,
                                   std::optional<std::uint64_t> offset_opt,
                                   ConstBytes data) {
    if (data.empty()) {
        throw InvalidArgument("zero-sized write");
    }
    const RootTrace root(env_.trace, offset_opt ? "write" : "append",
                         env_.self, last_trace_id_);
    const Stopwatch sw;
    const version::BlobInfo info = blob_info(blob);
    const std::uint64_t c = info.chunk_size;

    if (offset_opt && *offset_opt % c != 0) {
        throw InvalidArgument("write offset must be chunk-aligned");
    }

    // Chunk payload slices. For an explicit (aligned) write these are
    // known before version assignment, matching the paper's protocol of
    // uploading data before contacting the version manager; appends
    // resolve their offset at assign time, so they upload afterwards.
    std::vector<UploadedChunk> uploaded;
    std::vector<ConstBytes> payloads;
    Buffer merged_head;  // unaligned-append tail rewrite, if needed

    auto split_into = [c](ConstBytes bytes, std::vector<ConstBytes>& out) {
        for (std::size_t pos = 0; pos < bytes.size(); pos += c) {
            out.push_back(bytes.subspan(
                pos, std::min<std::size_t>(c, bytes.size() - pos)));
        }
    };

    auto upload_parts = [&](const std::vector<ConstBytes>& parts)
        -> std::vector<UploadedChunk> {
        if (cas_enabled()) {
            return upload_all_cas(parts, info.replication);
        }
        const auto plan = svc_.place(parts.size(), info.replication, c);
        return upload_all(blob, parts, plan);
    };

    version::AssignResult ar;
    if (offset_opt) {
        split_into(data, payloads);
        uploaded = upload_parts(payloads);
        try {
            ar = svc_.assign(blob, offset_opt, data.size());
        } catch (const Error&) {
            // Assignment refused (e.g. unaligned interior tail after a
            // concurrent extension): the uploaded chunks are unreachable;
            // release their references best-effort before propagating (a
            // decref of an unshared chunk erases it; a deduplicated one
            // just loses this write's reference).
            for (const auto& up : uploaded) {
                for (const NodeId r : up.replicas) {
                    try {
                        (void)svc_.chunk_decref(r, up.key);
                    } catch (const RpcError&) {
                        // Leaked reference; it only delays reclamation.
                    }
                }
            }
            throw;
        }
    } else {
        ar = svc_.assign(blob, std::nullopt, data.size());
        if (ar.offset % c != 0) {
            // Appending to an unaligned end: the trailing chunk must be
            // rewritten whole, merging the published predecessor's bytes.
            const std::uint64_t slot_start = (ar.offset / c) * c;
            const std::uint64_t prefix_len = ar.offset - slot_start;
            const Version prev = ar.version - 1;
            const auto pv =
                svc_.wait_published(blob, prev, env_.publish_timeout);
            if (pv.status == version::VersionStatus::kAborted) {
                throw VersionAborted(
                    "append predecessor aborted; this version is dead too");
            }
            const std::uint64_t head_data =
                std::min<std::uint64_t>(c - prefix_len, data.size());
            merged_head.resize(prefix_len + head_data);
            read_tail_for_merge(blob, pv, slot_start,
                                MutableBytes(merged_head.data(), prefix_len));
            std::memcpy(merged_head.data() + prefix_len, data.data(),
                        head_data);
            payloads.emplace_back(merged_head.data(), merged_head.size());
            split_into(data.subspan(head_data), payloads);
        } else {
            split_into(data, payloads);
        }
        uploaded = upload_parts(payloads);
    }

    // Assemble leaves in slot order and build the metadata tree.
    const meta::TreeGeometry geo(c);
    const ByteRange write_range{ar.offset, data.size()};
    const meta::SlotRange write_slots = geo.slots_of(write_range);
    if (uploaded.size() != write_slots.count) {
        throw ConsistencyError("chunk count does not match written slots");
    }

    meta::BuildInput in;
    in.blob = blob;
    in.chunk_size = c;
    in.version = ar.version;
    in.write_range = write_range;
    in.size_before = ar.size_before;
    in.size_after = ar.size_after;
    in.base = ar.base;
    in.concurrent = std::move(ar.concurrent);
    in.leaves.reserve(uploaded.size());
    for (const auto& up : uploaded) {
        in.leaves.push_back(
            up.key.is_content()
                ? meta::MetaNode::cas_leaf(up.replicas, up.key.blob,
                                           up.key.uid, up.bytes)
                : meta::MetaNode::leaf(up.replicas, up.key.uid, up.bytes));
    }
    build_version_tree(cache_, in);

    svc_.commit(blob, ar.version);
    stats_.write_latency_us.record(sw.elapsed_us());
    return ar.version;
}

// ---- read path ---------------------------------------------------------------

std::size_t BlobSeerClient::read(BlobId blob, Version version,
                                 std::uint64_t offset, MutableBytes out) {
    if (out.empty()) {
        return 0;
    }
    const RootTrace root(env_.trace, "read", env_.self, last_trace_id_);
    const Stopwatch sw;
    version::VersionInfo vi;
    if (const auto cached =
            version != kLatestVersion
                ? cached_version(blob, version)
                : std::optional<version::VersionInfo>{}) {
        vi = *cached;
    } else {
        vi = svc_.get_version(blob, version);
        if (vi.status == version::VersionStatus::kPending ||
            vi.status == version::VersionStatus::kCommitted) {
            vi = svc_.wait_published(blob, vi.version,
                                     env_.publish_timeout);
        }
        if (vi.status == version::VersionStatus::kAborted) {
            throw VersionAborted("read of aborted version " +
                                 std::to_string(vi.version));
        }
        if (vi.status == version::VersionStatus::kRetired) {
            throw VersionRetired("read of retired version " +
                                 std::to_string(vi.version));
        }
        remember_version(blob, vi);
    }
    if (offset + out.size() > vi.size) {
        throw InvalidArgument("read past end of snapshot v" +
                              std::to_string(vi.version) + " (size " +
                              std::to_string(vi.size) + ")");
    }

    const version::BlobInfo info = blob_info(blob);
    const auto plan =
        meta::plan_read(cache_, vi.tree.blob, vi.tree.version,
                        info.chunk_size, vi.size, {offset, out.size()});

    fetch_all(plan.segments, offset, out);

    stats_.reads.add();
    stats_.bytes_read.add(out.size());
    stats_.read_latency_us.record(sw.elapsed_us());
    return out.size();
}

// ---- asynchronous data path ------------------------------------------------
//
// A whole operation becomes one I/O-pool task that drives its own
// bounded in-flight window — overlap *within* an operation comes from
// the window, overlap *across* operations from the pool. The caller
// owns the data/out buffers until the future completes.

Future<Version> BlobSeerClient::write_async(BlobId blob,
                                            std::uint64_t offset,
                                            ConstBytes data) {
    return submit_async<Version>(
        [this, blob, offset, data] { return write(blob, offset, data); });
}

Future<Version> BlobSeerClient::append_async(BlobId blob, ConstBytes data) {
    return submit_async<Version>(
        [this, blob, data] { return append(blob, data); });
}

Future<std::size_t> BlobSeerClient::read_async(BlobId blob, Version version,
                                               std::uint64_t offset,
                                               MutableBytes out) {
    return submit_async<std::size_t>([this, blob, version, offset, out] {
        return read(blob, version, offset, out);
    });
}

std::size_t BlobSeerClient::read_available(BlobId blob, Version version,
                                           std::uint64_t offset,
                                           MutableBytes out) {
    const auto vi = stat(blob, version);
    if (offset >= vi.size) {
        return 0;
    }
    const std::size_t n =
        std::min<std::uint64_t>(out.size(), vi.size - offset);
    return read(blob, vi.version, offset, out.first(n));
}

void BlobSeerClient::update_health_view(
    std::unordered_map<NodeId, double> view) {
    const std::scoped_lock lock(health_mu_);
    health_view_ = std::move(view);
}

bool BlobSeerClient::is_healthy(NodeId node) const {
    const std::scoped_lock lock(health_mu_);
    const auto it = health_view_.find(node);
    return it == health_view_.end() || it->second >= 0.5;
}

std::vector<NodeId> BlobSeerClient::replica_order(
    const meta::ReadSegment& seg) const {
    const std::size_t n = seg.replicas.size();
    if (n == 0) {
        throw ConsistencyError("leaf with no replicas reached fetch");
    }
    // Spread read load across replicas: different clients start at
    // different replicas of the same chunk — but replicas flagged
    // unhealthy by the QoS feedback go to the back of the line.
    const std::size_t start =
        static_cast<std::size_t>(mix64(env_.self ^ seg.chunk.uid)) % n;
    std::vector<NodeId> order;
    order.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
        const NodeId r = seg.replicas[(start + k) % n];
        if (is_healthy(r)) {
            order.push_back(r);
        }
    }
    for (std::size_t k = 0; k < n; ++k) {
        const NodeId r = seg.replicas[(start + k) % n];
        if (!is_healthy(r)) {
            order.push_back(r);
        }
    }
    return order;
}

void BlobSeerClient::fetch_all(
    const std::vector<meta::ReadSegment>& segments, std::uint64_t offset,
    MutableBytes out) {
    const std::size_t window_cap =
        std::max<std::size_t>(1, env_.max_inflight_chunks);

    // The scatter-gather twin of upload_all: up to window_cap get_chunk
    // RPCs stream through the multiplexed transport at once, collected
    // oldest-first; a failed replica re-issues against the next one in
    // the segment's preference order while the window keeps moving.
    struct State {
        const meta::ReadSegment* seg = nullptr;
        MutableBytes slice;
        std::vector<NodeId> order;
        std::size_t next = 0;
        std::size_t passes = 0;
        bool done = false;
        std::string last_error;
    };
    std::vector<State> states;
    states.reserve(segments.size());
    for (const meta::ReadSegment& seg : segments) {
        MutableBytes slice = out.subspan(seg.blob_range.offset - offset,
                                         seg.blob_range.size);
        if (seg.hole) {
            std::memset(slice.data(), 0, slice.size());
            continue;
        }
        states.push_back(State{&seg, slice, replica_order(seg), 0, 0,
                               false, {}});
    }

    struct PendingGet {
        Future<rpc::ServiceClient::ChunkSlice> fut;
        std::size_t segment = 0;
        NodeId target = kInvalidNode;
    };
    std::deque<PendingGet> window;

    std::size_t next_start = 0;  // first segment not yet started
    auto issue = [&](std::size_t idx) {
        State& st = states[idx];
        for (;;) {
            while (st.next < st.order.size()) {
                const NodeId target = st.order[st.next++];
                Future<rpc::ServiceClient::ChunkSlice> fut;
                try {
                    fut = svc_.get_chunk_async(target, st.seg->chunk,
                                               st.seg->chunk_offset,
                                               st.slice.size());
                } catch (const RpcError& e) {
                    // call_async can fail synchronously (connection
                    // refused): walk on to the next replica like any
                    // other delivery failure.
                    st.last_error = e.what();
                    stats_.chunk_retries.add();
                    report_provider_failure(target);
                    continue;
                }
                stats_.inflight_chunk_rpcs.add();
                window.push_back(PendingGet{std::move(fut), idx, target});
                return;
            }
            if (st.passes > 0) {
                // Both passes exhausted: st.done stays false and the
                // post-drain check reports the NotFoundError.
                return;
            }
            // Every replica failed in one walk — under provider churn
            // that is usually a node mid-bounce, not data loss. One
            // brief second pass separates the two.
            st.passes = 1;
            st.next = 0;
            std::this_thread::sleep_for(milliseconds(2));
        }
    };

    auto collect_one = [&] {
        PendingGet get = std::move(window.front());
        window.pop_front();
        State& st = states[get.segment];
        stats_.inflight_chunk_rpcs.sub();
        try {
            const auto slice = get.fut.get();
            if (st.seg->chunk_offset + st.slice.size() > slice.chunk_size ||
                slice.bytes.size() < st.slice.size()) {
                throw ConsistencyError(
                    "chunk shorter than metadata claims: " +
                    st.seg->chunk.to_string());
            }
            std::memcpy(st.slice.data(), slice.bytes.data(),
                        st.slice.size());
            stats_.chunk_get_rpcs.add();
            st.done = true;
        } catch (const RpcError& e) {
            st.last_error = e.what();
            stats_.chunk_retries.add();
            // A delivery failure (unlike NotFound, where the provider
            // answered) is evidence of a death worth repairing.
            report_provider_failure(get.target);
            issue(get.segment);  // next replica (or brief second pass)
        } catch (const NotFoundError& e) {
            st.last_error = e.what();
            stats_.chunk_retries.add();
            issue(get.segment);
        }
    };

    try {
        for (;;) {
            while (window.size() < window_cap &&
                   next_start < states.size()) {
                issue(next_start++);
            }
            if (window.empty()) {
                break;
            }
            collect_one();
        }
    } catch (...) {
        // ConsistencyError (or another fatal type) is propagating:
        // drain the window first — in-flight futures still target the
        // caller's out buffer via their states, and the gauge must
        // balance.
        while (!window.empty()) {
            stats_.inflight_chunk_rpcs.sub();
            try {
                (void)window.front().fut.get();
            } catch (...) {
                // Already propagating the first failure.
            }
            window.pop_front();
        }
        throw;
    }

    for (const State& st : states) {
        if (!st.done && !fetch_from_any_provider(*st.seg, st.slice)) {
            throw NotFoundError("all replicas failed for " +
                                st.seg->chunk.to_string() + " (" +
                                st.last_error + ")");
        }
    }
}

void BlobSeerClient::fetch_segment(const meta::ReadSegment& seg,
                                   MutableBytes out) {
    const std::vector<NodeId> order = replica_order(seg);
    std::string last_error;
    // Two walks over the preference order: a whole failed pass under
    // provider churn is usually a node mid-bounce, not data loss (same
    // policy as fetch_all).
    for (int pass = 0; pass < 2; ++pass) {
        if (pass == 1) {
            std::this_thread::sleep_for(milliseconds(2));
        }
        for (const NodeId target : order) {
            try {
                const auto slice = svc_.get_chunk(
                    target, seg.chunk, seg.chunk_offset, out.size());
                if (seg.chunk_offset + out.size() > slice.chunk_size ||
                    slice.bytes.size() < out.size()) {
                    throw ConsistencyError(
                        "chunk shorter than metadata claims: " +
                        seg.chunk.to_string());
                }
                std::memcpy(out.data(), slice.bytes.data(), out.size());
                stats_.chunk_get_rpcs.add();
                return;
            } catch (const RpcError& e) {
                last_error = e.what();
                report_provider_failure(target);
            } catch (const NotFoundError& e) {
                last_error = e.what();
            }
            stats_.chunk_retries.add();
        }
    }
    if (fetch_from_any_provider(seg, out)) {
        return;
    }
    throw NotFoundError("all replicas failed for " + seg.chunk.to_string() +
                        " (" + last_error + ")");
}

bool BlobSeerClient::fetch_from_any_provider(const meta::ReadSegment& seg,
                                             MutableBytes out) {
    for (const NodeId target : env_.data_nodes) {
        if (std::find(seg.replicas.begin(), seg.replicas.end(), target) !=
            seg.replicas.end()) {
            continue;  // the preference-order walks already tried it
        }
        try {
            const auto slice = svc_.get_chunk(
                target, seg.chunk, seg.chunk_offset, out.size());
            if (seg.chunk_offset + out.size() > slice.chunk_size ||
                slice.bytes.size() < out.size()) {
                continue;  // truncated copy: keep probing
            }
            std::memcpy(out.data(), slice.bytes.data(), out.size());
            stats_.chunk_get_rpcs.add();
            stats_.chunk_locates.add();
            return true;
        } catch (const RpcError&) {
            stats_.chunk_retries.add();
        } catch (const NotFoundError&) {
            stats_.chunk_retries.add();
        }
    }
    return false;
}

void BlobSeerClient::report_provider_failure(NodeId target) {
    {
        const std::scoped_lock lock(reported_mu_);
        if (!reported_dead_.insert(target).second) {
            return;  // this client already reported it
        }
    }
    try {
        (void)svc_.report_failure(target);
    } catch (const RpcError&) {
        // Provider manager unreachable: forget the dedup entry so a
        // later failure gets to retry the report.
        const std::scoped_lock lock(reported_mu_);
        reported_dead_.erase(target);
    }
}

void BlobSeerClient::read_tail_for_merge(BlobId blob,
                                         const version::VersionInfo& vi,
                                         std::uint64_t slot_start,
                                         MutableBytes out) {
    const version::BlobInfo info = blob_info(blob);
    const auto plan =
        meta::plan_read(cache_, vi.tree.blob, vi.tree.version,
                        info.chunk_size, vi.size,
                        {slot_start, out.size()});
    for (const meta::ReadSegment& seg : plan.segments) {
        MutableBytes slice = out.subspan(seg.blob_range.offset - slot_start,
                                         seg.blob_range.size);
        if (seg.hole) {
            std::memset(slice.data(), 0, slice.size());
        } else {
            fetch_segment(seg, slice);
        }
    }
}

// ---- queries ------------------------------------------------------------------

version::VersionInfo BlobSeerClient::stat(BlobId blob, Version version) {
    return svc_.get_version(blob, version);
}

version::VersionInfo BlobSeerClient::wait_published(BlobId blob,
                                                    Version version) {
    const auto vi =
        svc_.wait_published(blob, version, env_.publish_timeout);
    if (vi.status == version::VersionStatus::kAborted) {
        throw VersionAborted("version " + std::to_string(version) +
                             " aborted");
    }
    return vi;
}

std::vector<SegmentLocation> BlobSeerClient::locate(BlobId blob,
                                                    Version version,
                                                    ByteRange range) {
    version::VersionInfo vi = svc_.get_version(blob, version);
    if (vi.status != version::VersionStatus::kPublished) {
        throw InvalidArgument("locate on unpublished version");
    }
    if (range.end() > vi.size) {
        throw InvalidArgument("locate past end of snapshot");
    }
    const version::BlobInfo info = blob_info(blob);
    const auto plan = meta::plan_read(cache_, vi.tree.blob, vi.tree.version,
                                      info.chunk_size, vi.size, range);
    std::vector<SegmentLocation> out;
    out.reserve(plan.segments.size());
    for (const auto& seg : plan.segments) {
        out.push_back(
            SegmentLocation{seg.blob_range, seg.hole, seg.replicas});
    }
    return out;
}

std::vector<version::VersionManager::VersionSummary> BlobSeerClient::history(
    BlobId blob, Version from, Version to) {
    return svc_.history(blob, from, to);
}

std::vector<ByteRange> BlobSeerClient::changed_ranges(BlobId blob,
                                                      Version from,
                                                      Version to) {
    if (from > to && to != kLatestVersion) {
        throw InvalidArgument("changed_ranges needs from <= to");
    }
    auto summaries = history(blob, from + 1, to);
    std::vector<ByteRange> ranges;
    for (const auto& s : summaries) {
        if (s.status == version::VersionStatus::kAborted || s.size == 0) {
            continue;
        }
        ranges.push_back(ByteRange{s.offset, s.size});
    }
    std::sort(ranges.begin(), ranges.end(),
              [](const ByteRange& a, const ByteRange& b) {
                  return a.offset < b.offset;
              });
    std::vector<ByteRange> merged;
    for (const ByteRange& r : ranges) {
        if (!merged.empty() && r.offset <= merged.back().end()) {
            merged.back().size =
                std::max(merged.back().end(), r.end()) -
                merged.back().offset;
        } else {
            merged.push_back(r);
        }
    }
    return merged;
}

void BlobSeerClient::pin(BlobId blob, Version version) {
    svc_.pin(blob, version);
}

void BlobSeerClient::unpin(BlobId blob, Version version) {
    svc_.unpin(blob, version);
}

BlobSeerClient::RetireStats BlobSeerClient::retire_versions(
    BlobId blob, Version keep_from) {
    const auto info = svc_.retire(blob, keep_from);
    const version::BlobInfo binfo = blob_info(blob);
    const meta::TreeGeometry geo(binfo.chunk_size);

    RetireStats stats;
    stats.versions = info.retired.size();

    // A node (w, R) lost its last reader iff some version u in
    // (w, keep_from] also creates R (every surviving tree then resolves
    // R to u or newer) AND no pinned snapshot sits in [w, u) (it would
    // still read w's node).
    auto deletable = [&](Version w, const meta::SlotRange& r) {
        for (const auto& d : info.descriptors) {
            if (d.version <= w) {
                continue;
            }
            if (creates_node(d, r, geo)) {
                for (const Version p : info.pinned) {
                    if (p >= w && p < d.version) {
                        return false;
                    }
                }
                return true;
            }
        }
        return false;  // keep_from itself still reads this node
    };

    for (const Version w : info.retired) {
        const auto it = std::find_if(
            info.descriptors.begin(), info.descriptors.end(),
            [w](const meta::WriteDescriptor& d) { return d.version == w; });
        if (it == info.descriptors.end()) {
            continue;
        }
        for (const meta::SlotRange& r : created_ranges(*it, geo)) {
            if (!deletable(w, r)) {
                continue;
            }
            const meta::MetaKey key{blob, w, r};
            const auto node = dht_.try_get(key);
            if (node && node->is_leaf() && !node->replicas.empty()) {
                const chunk::ChunkKey ck = node->chunk_key(blob);
                for (const NodeId target : node->replicas) {
                    try {
                        (void)svc_.chunk_decref(target, ck);
                    } catch (const RpcError&) {
                        // Dead provider holds no reclaimable bytes.
                    }
                }
                ++stats.chunks;
            }
            cache_.erase(key);
            ++stats.meta_nodes;
        }
    }
    {
        // Drop this client's own cached facts about retired snapshots.
        const std::scoped_lock lock(info_mu_);
        for (const Version w : info.retired) {
            version_cache_.erase({blob, w});
        }
    }
    return stats;
}

BlobSeerClient::DeleteStats BlobSeerClient::delete_blob(BlobId blob) {
    DeleteStats out;
    const auto vi = svc_.get_version(blob, kLatestVersion);
    if (vi.version > 0 &&
        vi.status == version::VersionStatus::kPublished) {
        // Tear down the history first: retire reclaims every node and
        // chunk reference only older snapshots could reach, so the walk
        // below only has the latest tree left to release.
        const auto rs = retire_versions(blob, vi.version);
        out.versions = rs.versions + 1;
        out.meta_nodes = rs.meta_nodes;
        out.chunks = rs.chunks;

        const version::BlobInfo info = blob_info(blob);
        const meta::TreeGeometry geo(info.chunk_size);
        const meta::SlotRange root = geo.root_range(vi.size);
        if (!root.empty()) {
            delete_walk(blob, meta::ChildRef{vi.tree.blob, vi.tree.version},
                        root, out);
        }
    }
    const std::scoped_lock lock(info_mu_);
    info_cache_.erase(blob);
    for (auto it = version_cache_.lower_bound({blob, 0});
         it != version_cache_.end() && it->first.first == blob;) {
        it = version_cache_.erase(it);
    }
    return out;
}

void BlobSeerClient::delete_walk(BlobId blob, const meta::ChildRef& ref,
                                 const meta::SlotRange& r,
                                 DeleteStats& out) {
    if (ref.is_hole() || ref.blob != blob) {
        // Holes own nothing; a foreign blob id marks a clone boundary —
        // the origin blob owns that subtree's nodes and its chunk
        // references, and reclaiming them here would corrupt it.
        return;
    }
    const meta::MetaKey key{ref.blob, ref.version, r};
    const auto node = dht_.try_get(key);
    if (!node) {
        return;  // already reclaimed, or its writer died mid-store
    }
    if (r.is_leaf()) {
        if (node->is_leaf() && !node->replicas.empty()) {
            const chunk::ChunkKey ck = node->chunk_key(ref.blob);
            for (const NodeId target : node->replicas) {
                try {
                    (void)svc_.chunk_decref(target, ck);
                } catch (const RpcError&) {
                    // Dead provider holds no reclaimable bytes.
                }
            }
            ++out.chunks;
        }
    } else if (!node->is_leaf()) {
        delete_walk(blob, node->left, r.left(), out);
        delete_walk(blob, node->right, r.right(), out);
    }
    cache_.erase(key);
    ++out.meta_nodes;
}

std::size_t BlobSeerClient::gc_aborted_version(BlobId blob, Version version) {
    const auto vi = svc_.get_version(blob, version);
    if (vi.status != version::VersionStatus::kAborted) {
        throw InvalidArgument("gc of non-aborted version " +
                              std::to_string(version));
    }
    const auto desc = svc_.descriptor_of(blob, version);
    const version::BlobInfo info = blob_info(blob);
    const meta::TreeGeometry geo(info.chunk_size);

    std::size_t removed = 0;
    for (const meta::SlotRange& r : created_ranges(desc, geo)) {
        const meta::MetaKey key{blob, version, r};
        // Bypass the cache: aborted nodes were never read through it.
        const auto node = dht_.try_get(key);
        if (!node) {
            continue;  // writer died before storing this one
        }
        if (node->is_leaf() && !node->replicas.empty()) {
            const chunk::ChunkKey ck = node->chunk_key(blob);
            for (const NodeId target : node->replicas) {
                try {
                    (void)svc_.chunk_decref(target, ck);
                } catch (const RpcError&) {
                    // Dead provider: nothing to reclaim there anyway.
                }
            }
        }
        dht_.erase(key);
        ++removed;
    }
    return removed;
}

}  // namespace blobseer::core
