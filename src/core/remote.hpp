/// \file remote.hpp
/// \brief Bootstrap of a BlobSeer client against a remote deployment.
///
/// connect_tcp() is the network-mode entry point: it opens a TcpTransport
/// to a blobseer_serverd daemon (or an in-process TcpRpcServer), performs
/// the kTopology handshake to learn the deployment's service node ids,
/// DHT membership and replication parameters, and assembles a ClientEnv
/// ready to construct a BlobSeerClient. The resulting client speaks the
/// exact same wire protocol as in-process SimTransport clients — the
/// end-to-end tests assert byte-identical results between the two paths.

#pragma once

#include <cstdint>
#include <string>

#include "core/client.hpp"

namespace blobseer::core {

/// Client-local knobs a remote deployment cannot dictate.
struct RemoteOptions {
    std::size_t meta_cache_nodes = 4096;
    std::size_t io_threads = 4;
    /// Chunk RPCs one write/read keeps in flight on the multiplexed
    /// connection (ClientEnv::max_inflight_chunks).
    std::size_t max_inflight_chunks = 64;
};

/// Connect to a daemon at \p host:\p port and build a client environment
/// from its advertised topology. Throws RpcError when the daemon is
/// unreachable or speaks a different protocol version.
[[nodiscard]] ClientEnv connect_tcp(const std::string& host,
                                    std::uint16_t port,
                                    const RemoteOptions& options = {});

}  // namespace blobseer::core
