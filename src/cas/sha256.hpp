/// \file sha256.hpp
/// \brief Vendored SHA-256 (FIPS 180-4) for content addressing.
///
/// The common/hash.hpp FNV-1a is fine for sharding and ring placement
/// but is trivially collidable, so it must never be used to *address*
/// data. Content-addressed chunk keys are derived from SHA-256 instead:
/// a full 256-bit digest computed here, truncated to 128 bits for the
/// on-wire/on-disk key (see chunk::ChunkKey::content). The
/// implementation is self-contained (no OpenSSL dependency) and pinned
/// against the FIPS 180-4 test vectors in tests/test_common.cpp, the
/// same way the engine's CRC32C is pinned by the RFC 3720 vector.

#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/buffer.hpp"

namespace blobseer::cas {

/// 256-bit digest as raw bytes, big-endian word order per FIPS 180-4.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256: update() in arbitrary slices, then finish().
/// A finished hasher can be reused after reset().
class Sha256 {
public:
    Sha256() { reset(); }

    void reset() {
        state_ = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
                  0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};
        total_ = 0;
        fill_ = 0;
    }

    void update(const void* data, std::size_t len) {
        const auto* p = static_cast<const std::uint8_t*>(data);
        total_ += len;
        if (fill_ != 0) {
            const std::size_t take = std::min(len, kBlock - fill_);
            std::memcpy(block_.data() + fill_, p, take);
            fill_ += take;
            p += take;
            len -= take;
            if (fill_ == kBlock) {
                compress(block_.data());
                fill_ = 0;
            }
        }
        while (len >= kBlock) {
            compress(p);
            p += kBlock;
            len -= kBlock;
        }
        if (len != 0) {
            std::memcpy(block_.data(), p, len);
            fill_ = len;
        }
    }

    void update(ConstBytes bytes) { update(bytes.data(), bytes.size()); }

    Digest finish() {
        // Pad: 0x80, zeros, then the 64-bit bit length big-endian.
        const std::uint64_t bits = total_ * 8;
        const std::uint8_t pad = 0x80;
        update(&pad, 1);
        static constexpr std::uint8_t kZeros[kBlock] = {};
        while (fill_ != kBlock - 8) {
            const std::size_t want =
                fill_ < kBlock - 8 ? (kBlock - 8) - fill_ : kBlock - fill_;
            update(kZeros, want);
        }
        std::uint8_t len_be[8];
        for (int i = 0; i < 8; ++i) {
            len_be[i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
        }
        // Bypass update(): the length bytes must not count toward total_.
        std::memcpy(block_.data() + fill_, len_be, 8);
        compress(block_.data());
        fill_ = 0;
        Digest out;
        for (int i = 0; i < 8; ++i) {
            out[4 * i + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
            out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
            out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
            out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
        }
        return out;
    }

private:
    static constexpr std::size_t kBlock = 64;

    static std::uint32_t rotr(std::uint32_t x, int n) {
        return (x >> n) | (x << (32 - n));
    }

    void compress(const std::uint8_t* p) {
        static constexpr std::uint32_t K[64] = {
            0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
            0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
            0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
            0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
            0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
            0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
            0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
            0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
            0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
            0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
            0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
            0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
            0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};
        std::uint32_t w[64];
        for (int i = 0; i < 16; ++i) {
            w[i] = (std::uint32_t{p[4 * i]} << 24) |
                   (std::uint32_t{p[4 * i + 1]} << 16) |
                   (std::uint32_t{p[4 * i + 2]} << 8) |
                   std::uint32_t{p[4 * i + 3]};
        }
        for (int i = 16; i < 64; ++i) {
            const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                                     (w[i - 15] >> 3);
            const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                                     (w[i - 2] >> 10);
            w[i] = w[i - 16] + s0 + w[i - 7] + s1;
        }
        std::uint32_t a = state_[0], b = state_[1], c = state_[2],
                      d = state_[3], e = state_[4], f = state_[5],
                      g = state_[6], h = state_[7];
        for (int i = 0; i < 64; ++i) {
            const std::uint32_t S1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
            const std::uint32_t ch = (e & f) ^ (~e & g);
            const std::uint32_t t1 = h + S1 + ch + K[i] + w[i];
            const std::uint32_t S0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
            const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
            const std::uint32_t t2 = S0 + maj;
            h = g;
            g = f;
            f = e;
            e = d + t1;
            d = c;
            c = b;
            b = a;
            a = t1 + t2;
        }
        state_[0] += a;
        state_[1] += b;
        state_[2] += c;
        state_[3] += d;
        state_[4] += e;
        state_[5] += f;
        state_[6] += g;
        state_[7] += h;
    }

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, kBlock> block_;
    std::uint64_t total_ = 0;
    std::size_t fill_ = 0;
};

/// One-shot digest of a byte span.
inline Digest sha256(const void* data, std::size_t len) {
    Sha256 h;
    h.update(data, len);
    return h.finish();
}

inline Digest sha256(ConstBytes bytes) {
    return sha256(bytes.data(), bytes.size());
}

/// Truncate a digest to the 128-bit (hi, lo) pair used as a chunk key.
/// Big-endian interpretation of the first 16 digest bytes, so the hex
/// prefix of the canonical digest string is recognisable in key dumps.
inline std::pair<std::uint64_t, std::uint64_t> digest128(const Digest& d) {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    for (int i = 0; i < 8; ++i) {
        hi = (hi << 8) | d[i];
        lo = (lo << 8) | d[8 + i];
    }
    return {hi, lo};
}

/// Lowercase hex of a full digest (test vectors, logging).
inline std::string to_hex(const Digest& d) {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string out;
    out.reserve(64);
    for (const std::uint8_t b : d) {
        out.push_back(kHex[b >> 4]);
        out.push_back(kHex[b & 0xF]);
    }
    return out;
}

}  // namespace blobseer::cas
