#include "engine/log_engine.hpp"

#include <sys/file.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "codec/codec.hpp"
#include "codec/lz4.hpp"
#include "engine/crc32c.hpp"

namespace blobseer::engine {

namespace {

/// Stateless; shared by every engine for transparent decompression (and
/// by the compactor for recompression when the config enables it).
const codec::Lz4Codec kLz4;

/// Encode one record: [crc32c | klen | vlen | type | key | value], CRC
/// over everything after the CRC field.
Buffer encode_record(RecordType type, std::string_view key,
                     ConstBytes value) {
    Buffer rec;
    rec.reserve(kRecordHeaderSize + key.size() + value.size());
    put_u32(rec, 0);  // CRC placeholder
    put_u32(rec, static_cast<std::uint32_t>(key.size()));
    put_u32(rec, static_cast<std::uint32_t>(value.size()));
    rec.push_back(static_cast<std::uint8_t>(type));
    rec.insert(rec.end(), key.begin(), key.end());
    rec.insert(rec.end(), value.begin(), value.end());
    poke_u32(rec, 0, crc32c(ConstBytes(rec).subspan(4)));
    return rec;
}

std::string pad10(std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%010llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

/// Parse the numeric middle of "<prefix><number><suffix>" names.
std::optional<std::uint64_t> parse_numbered(const std::string& name,
                                            std::string_view prefix,
                                            std::string_view suffix) {
    if (!name.starts_with(prefix) || !name.ends_with(suffix) ||
        name.size() <= prefix.size() + suffix.size()) {
        return std::nullopt;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    try {
        return std::stoull(digits);
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

Buffer read_whole_file(const std::filesystem::path& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        throw Error("cannot read " + path.string());
    }
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    Buffer buf(static_cast<std::size_t>(size));
    const std::size_t n =
        buf.empty() ? 0 : std::fread(buf.data(), 1, buf.size(), f);
    std::fclose(f);
    if (n != buf.size()) {
        throw Error("short read from " + path.string());
    }
    return buf;
}

}  // namespace

LogEngine::DirLock::DirLock(const std::filesystem::path& dir) {
    std::filesystem::create_directories(dir);
    const auto lock_path = dir / "LOCK";
    fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0644);
    if (fd_ < 0) {
        throw Error("cannot open " + lock_path.string() + ": " +
                    std::strerror(errno));
    }
    if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
        ::close(fd_);
        fd_ = -1;
        throw Error("engine directory " + dir.string() +
                    " is locked by another instance (two engines on one "
                    "directory would corrupt the log)");
    }
}

LogEngine::DirLock::~DirLock() {
    if (fd_ >= 0) {
        ::close(fd_);  // releases the flock
    }
}

LogEngine::LogEngine(EngineConfig cfg)
    : cfg_(std::move(cfg)), dir_lock_(cfg_.dir) {
    recover();
    pool_ = std::make_unique<ThreadPool>(1);

    const MetricLabels labels{{"dir", cfg_.dir}};
    metrics_.counter("engine_appends_total", labels, appends_);
    metrics_.counter("engine_overwrites_total", labels, overwrites_);
    metrics_.counter("engine_removes_total", labels, removes_);
    metrics_.counter("engine_gets_total", labels, gets_);
    metrics_.counter("engine_compactions_total", labels, compactions_);
    metrics_.counter("engine_relocated_records_total", labels,
                     relocated_records_);
    metrics_.counter("engine_reclaimed_bytes_total", labels,
                     reclaimed_bytes_);
    metrics_.counter("engine_ref_gets_mmap_total", labels, ref_gets_mmap_);
    metrics_.counter("engine_ref_gets_copy_total", labels, ref_gets_copy_);
    metrics_.counter("engine_deferred_unlinks_total", labels,
                     deferred_unlinks_);
    metrics_.counter("engine_compact_compressed_records_total", labels,
                     compact_compressed_records_);
    metrics_.counter("engine_compact_raw_bytes_in_total", labels,
                     compact_raw_bytes_in_);
    metrics_.counter("engine_compact_stored_bytes_out_total", labels,
                     compact_stored_bytes_out_);
    metrics_.counter("engine_checkpoints_written_total", labels,
                     checkpoints_written_);
    metrics_.counter("engine_torn_bytes_discarded_total", labels,
                     torn_bytes_discarded_);
    metrics_.counter("engine_crc_read_failures_total", labels,
                     crc_read_failures_);
    metrics_.counter("engine_background_failures_total", labels,
                     background_failures_);
    metrics_.callback("engine_live_value_bytes", labels, [this] {
        const std::scoped_lock lock(mu_);
        return live_value_bytes_;
    });
    metrics_.callback("engine_segments", labels, [this] {
        const std::scoped_lock lock(mu_);
        return segments_.size();
    });
    // Compressed-vs-raw live bytes: with engine_live_value_bytes these
    // give the on-disk compression ratio as a /metrics series.
    metrics_.callback("engine_compressed_live_records", labels, [this] {
        const std::scoped_lock lock(mu_);
        return compressed_live_records_;
    });
    metrics_.callback("engine_compressed_live_bytes", labels, [this] {
        const std::scoped_lock lock(mu_);
        return compressed_live_bytes_;
    });
}

LogEngine::~LogEngine() {
    {
        const std::scoped_lock lock(mu_);
        closing_ = true;
    }
    pool_.reset();  // joins after draining queued chores (they early-exit)
    if (cfg_.checkpoint_interval_records != 0) {
        bool dirty = false;
        {
            const std::scoped_lock lock(mu_);
            dirty = appends_since_checkpoint_ > 0;
        }
        try {
            if (dirty) {
                checkpoint();
            }
        } catch (...) {
            // Clean-close checkpoint is an optimization; recovery
            // rescans. Nothing (filesystem_error included) may escape a
            // destructor.
        }
    }
}

// ---- recovery ---------------------------------------------------------------

void LogEngine::recover() {
    std::vector<std::uint64_t> seg_ids;
    std::vector<std::pair<std::uint64_t, std::filesystem::path>> ckpts;
    for (const auto& entry : std::filesystem::directory_iterator(cfg_.dir)) {
        if (!entry.is_regular_file()) {
            continue;
        }
        const std::string name = entry.path().filename().string();
        if (name.ends_with(".tmp")) {
            // A checkpoint write that never reached its rename.
            std::error_code ec;
            std::filesystem::remove(entry.path(), ec);
            continue;
        }
        if (const auto id = parse_numbered(name, "seg-", ".log")) {
            seg_ids.push_back(*id);
        } else if (const auto seq = parse_numbered(name, "ckpt-", ".idx")) {
            ckpts.emplace_back(*seq, entry.path());
        }
    }
    std::sort(seg_ids.begin(), seg_ids.end());

    for (const std::uint64_t id : seg_ids) {
        auto file = SegmentFile::open(segment_path(id), false);
        Buffer hdr(kSegmentHeaderSize);
        const bool header_ok =
            file->size() >= kSegmentHeaderSize &&
            file->read_exact(0, hdr) && decode_segment_header(hdr) == id;
        if (!header_ok) {
            if (id != seg_ids.back()) {
                throw ConsistencyError("bad header in sealed segment " +
                                       segment_path(id).string());
            }
            // Crash while creating the newest segment: reset it.
            torn_bytes_discarded_.add(file->size());
            file->truncate(0);
            file->append(encode_segment_header(id, write_version()));
        }
        segments_.emplace(
            id, Segment{.file = std::move(file), .sealed = true});
    }

    // Newest valid checkpoint wins; older ones remain as fallbacks (the
    // watermark is only ever behind, never wrong).
    std::sort(ckpts.begin(), ckpts.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (!ckpts.empty()) {
        next_checkpoint_seq_ = ckpts.front().first + 1;
    }
    std::uint64_t wm_seg = 0;
    std::uint64_t wm_off = 0;
    for (const auto& [seq, path] : ckpts) {
        (void)seq;
        if (try_load_checkpoint(path)) {
            wm_seg = ckpt_watermark_seg_;
            wm_off = ckpt_watermark_off_;
            recovered_from_checkpoint_ = true;
            break;
        }
        std::error_code ec;  // invalid (stale or torn) checkpoint: drop it
        std::filesystem::remove(path, ec);
    }

    std::uint64_t replayed = 0;
    for (auto& [id, seg] : segments_) {
        if (recovered_from_checkpoint_ && id < wm_seg) {
            continue;
        }
        const std::uint64_t from =
            recovered_from_checkpoint_ && id == wm_seg ? wm_off
                                                       : kSegmentHeaderSize;
        const bool is_tail = id == segments_.rbegin()->first;
        const auto outcome = for_each_record(
            *seg.file, from,
            [&](std::uint64_t offset, RecordType type, std::string_view key,
                ConstBytes value) {
                ++replayed;
                apply_record_locked(
                    type, key, static_cast<std::uint32_t>(value.size()),
                    Location{id, offset,
                             static_cast<std::uint32_t>(key.size()),
                             static_cast<std::uint32_t>(value.size())});
            });
        if (!outcome.clean) {
            if (!is_tail) {
                throw ConsistencyError(
                    "corrupt record in sealed segment " +
                    seg.file->path().string() + " at offset " +
                    std::to_string(outcome.end_offset));
            }
            // Torn tail from a crash mid-append: discard the suffix.
            torn_bytes_discarded_.add(seg.file->size() - outcome.end_offset);
            seg.file->truncate(outcome.end_offset);
        }
    }

    if (segments_.empty()) {
        open_fresh_segment_locked(1);
    } else {
        active_id_ = segments_.rbegin()->first;
        segments_[active_id_].sealed = false;
    }

    // Count the replayed records (the whole log after a full scan, the
    // post-watermark suffix after a checkpoint load) as un-checkpointed:
    // a clean close then writes a fresh checkpoint, so the next open
    // never re-replays the same suffix.
    appends_since_checkpoint_ = replayed;
}

bool LogEngine::try_load_checkpoint(const std::filesystem::path& file) {
    Buffer raw;
    try {
        raw = read_whole_file(file);
    } catch (const Error&) {
        return false;
    }
    if (raw.size() < kCheckpointHeaderSize + 4) {
        return false;
    }
    const std::size_t body = raw.size() - 4;
    if (crc32c(ConstBytes(raw).first(body)) != get_u32(raw, body)) {
        return false;
    }
    for (std::size_t i = 0; i < kCheckpointMagic.size(); ++i) {
        if (raw[i] != kCheckpointMagic[i]) {
            return false;
        }
    }
    if (!supported_format_version(get_u32(raw, 8))) {
        return false;
    }
    const std::uint64_t wm_seg = get_u64(raw, 16);
    const std::uint64_t wm_off = get_u64(raw, 24);
    const std::uint64_t count = get_u64(raw, 32);

    const auto wm_it = segments_.find(wm_seg);
    if (wm_it == segments_.end() || wm_off < kSegmentHeaderSize ||
        wm_off > wm_it->second.file->size()) {
        return false;  // watermark beyond a (possibly truncated) tail
    }

    KeyMap index;
    KeyMap dead;
    std::unordered_map<std::uint64_t, std::uint64_t> live;
    std::unordered_map<std::uint64_t, std::uint64_t> tomb;
    index.reserve(count);  // rehash-free bulk load: reopen is O(live keys)
    std::uint64_t value_bytes = 0;
    std::uint64_t compressed_records = 0;
    std::uint64_t compressed_bytes = 0;
    std::size_t pos = kCheckpointHeaderSize;
    // Entries cluster by segment; memoize the last lookup.
    std::uint64_t cached_seg = 0;
    std::uint64_t cached_seg_size = 0;
    bool cached_valid = false;
    for (std::uint64_t i = 0; i < count; ++i) {
        if (pos + 25 > body) {
            return false;
        }
        Location loc;
        loc.klen = get_u32(raw, pos);
        loc.vlen = get_u32(raw, pos + 4);
        loc.segment = get_u64(raw, pos + 8);
        loc.offset = get_u64(raw, pos + 16);
        const std::uint8_t kind = raw[pos + 24];
        pos += 25;
        if (!valid_record_type(kind) || loc.klen == 0 ||
            loc.klen > kMaxKeyLen || pos + loc.klen > body) {
            return false;
        }
        if (!cached_valid || cached_seg != loc.segment) {
            const auto seg = segments_.find(loc.segment);
            if (seg == segments_.end()) {
                return false;  // entry points at a compacted-away segment
            }
            cached_seg = loc.segment;
            cached_seg_size = seg->second.file->size();
            cached_valid = true;
        }
        if (loc.offset < kSegmentHeaderSize ||
            loc.offset + loc.size() > cached_seg_size) {
            return false;  // entry points at torn bytes
        }
        std::string key(reinterpret_cast<const char*>(raw.data() + pos),
                        loc.klen);
        pos += loc.klen;
        if (is_put_type(static_cast<RecordType>(kind))) {
            loc.compressed =
                kind == static_cast<std::uint8_t>(RecordType::kPutCompressed);
            if (loc.compressed) {
                ++compressed_records;
                compressed_bytes += loc.vlen;
            }
            live[loc.segment] += loc.size();
            value_bytes += loc.vlen;
            index.emplace(std::move(key), loc);
        } else {
            tomb[loc.segment] += loc.size();
            dead.emplace(std::move(key), loc);
        }
    }
    if (pos != body) {
        return false;
    }

    index_ = std::move(index);
    dead_keys_ = std::move(dead);
    for (const auto& [seg, bytes] : live) {
        segments_[seg].live_bytes = bytes;
    }
    for (const auto& [seg, bytes] : tomb) {
        segments_[seg].tomb_bytes = bytes;
    }
    live_value_bytes_ = value_bytes;
    compressed_live_records_ = compressed_records;
    compressed_live_bytes_ = compressed_bytes;
    ckpt_watermark_seg_ = wm_seg;
    ckpt_watermark_off_ = wm_off;
    return true;
}

LogEngine::ScanOutcome LogEngine::for_each_record(
    SegmentFile& file, std::uint64_t from,
    const std::function<void(std::uint64_t, RecordType, std::string_view,
                             ConstBytes)>& fn) {
    const std::uint64_t end = file.size();
    Buffer hdr(kRecordHeaderSize);
    Buffer payload;
    std::uint64_t pos = from;
    while (pos < end) {
        if (pos + kRecordHeaderSize > end ||
            !file.read_exact(pos, hdr)) {
            return {pos, false};
        }
        const std::uint32_t crc = get_u32(hdr, 0);
        const std::uint32_t klen = get_u32(hdr, 4);
        const std::uint32_t vlen = get_u32(hdr, 8);
        const std::uint8_t type = hdr[12];
        if (!valid_record_type(type) || klen == 0 || klen > kMaxKeyLen ||
            vlen > kMaxValueLen ||
            pos + record_size(klen, vlen) > end) {
            return {pos, false};
        }
        payload.resize(klen + vlen);
        if (!file.read_exact(pos + kRecordHeaderSize, payload)) {
            return {pos, false};
        }
        std::uint32_t state = crc32c_init();
        state = crc32c_update(state, ConstBytes(hdr).subspan(4));
        state = crc32c_update(state, payload);
        if (crc32c_final(state) != crc) {
            return {pos, false};
        }
        fn(pos, static_cast<RecordType>(type),
           std::string_view(reinterpret_cast<const char*>(payload.data()),
                            klen),
           ConstBytes(payload).subspan(klen));
        pos += record_size(klen, vlen);
    }
    return {pos, true};
}

// ---- data plane -------------------------------------------------------------

void LogEngine::validate_kv(std::string_view key, ConstBytes value) {
    if (key.empty() || key.size() > kMaxKeyLen) {
        throw InvalidArgument("engine key must be 1.." +
                              std::to_string(kMaxKeyLen) + " bytes");
    }
    if (value.size() > kMaxValueLen) {
        throw InvalidArgument("engine value exceeds " +
                              std::to_string(kMaxValueLen) + " bytes");
    }
}

void LogEngine::put(std::string_view key, ConstBytes value) {
    validate_kv(key, value);
    const std::scoped_lock lock(mu_);
    append_locked(RecordType::kPut, key, value);
    appends_.add();
}

bool LogEngine::put_if_absent(std::string_view key, ConstBytes value) {
    validate_kv(key, value);
    const std::scoped_lock lock(mu_);
    if (index_.contains(key)) {
        return false;
    }
    append_locked(RecordType::kPut, key, value);
    appends_.add();
    return true;
}

std::optional<Buffer> LogEngine::get(std::string_view key) {
    Location loc;
    std::shared_ptr<SegmentFile> file;
    {
        const std::scoped_lock lock(mu_);
        gets_.add();
        const auto it = index_.find(key);
        if (it == index_.end()) {
            return std::nullopt;
        }
        loc = it->second;
        file = segments_.at(loc.segment).file;
    }
    return read_value_checked(loc, *file, key);
}

Buffer LogEngine::read_value_checked(const Location& loc, SegmentFile& file,
                                     std::string_view key) {
    // Read and re-verify outside the lock: the record is immutable and the
    // caller's shared_ptr keeps the file alive even if the compactor
    // unlinks it. Two preads — header+key into a scratch buffer, value
    // straight into the returned Buffer — so the (up to chunk-sized)
    // value is never copied a second time; the incremental CRC covers
    // both pieces.
    Buffer head(kRecordHeaderSize + loc.klen);
    Buffer value(loc.vlen);
    if (!file.read_exact(loc.offset, head) ||
        !file.read_exact(loc.offset + head.size(), value)) {
        crc_read_failures_.add();
        throw ConsistencyError("short record read for engine key in " +
                               file.path().string());
    }
    const std::uint8_t expected_type = static_cast<std::uint8_t>(
        loc.compressed ? RecordType::kPutCompressed : RecordType::kPut);
    const std::uint32_t crc = get_u32(head, 0);
    std::uint32_t state = crc32c_init();
    state = crc32c_update(state, ConstBytes(head).subspan(4));
    state = crc32c_update(state, value);
    if (crc32c_final(state) != crc || get_u32(head, 4) != loc.klen ||
        get_u32(head, 8) != loc.vlen || head[12] != expected_type ||
        std::string_view(reinterpret_cast<const char*>(head.data()) +
                             kRecordHeaderSize,
                         loc.klen) != key) {
        crc_read_failures_.add();
        throw ConsistencyError("CRC mismatch reading engine record in " +
                               file.path().string() + " at offset " +
                               std::to_string(loc.offset));
    }
    if (!loc.compressed) {
        return value;
    }
    // The CRC covers the stored frame; a frame that then fails to decode
    // is corruption the CRC happened to bless — surface it identically.
    try {
        return codec::decode_frame(kLz4, value);
    } catch (const Error&) {
        crc_read_failures_.add();
        throw ConsistencyError("undecodable compressed engine record in " +
                               file.path().string() + " at offset " +
                               std::to_string(loc.offset));
    }
}

std::optional<ValueRef> LogEngine::get_ref(std::string_view key) {
    Location loc;
    std::shared_ptr<SegmentFile> file;
    std::shared_ptr<SegmentPin> pin;
    bool sealed = false;
    std::uint64_t seg_size = 0;
    {
        const std::scoped_lock lock(mu_);
        gets_.add();
        const auto it = index_.find(key);
        if (it == index_.end()) {
            return std::nullopt;
        }
        loc = it->second;
        const Segment& seg = segments_.at(loc.segment);
        file = seg.file;
        pin = seg.pin;
        sealed = seg.sealed;
        seg_size = seg.file->size();
        // Pin while locked: the compactor erases the segment (and
        // retires the file) only under this same mutex, so a view is
        // always pinned before its segment can be retired.
        pin->add();
    }

    // Release the pin unless the mmap path below takes ownership of it.
    struct PinRelease {
        std::shared_ptr<SegmentPin> pin;
        ~PinRelease() {
            if (pin) {
                pin->release();
            }
        }
    } guard{pin};

    if (sealed && !loc.compressed) {
        // A sealed segment's bytes and size are final, so one shared
        // full-size read-only mapping serves all readers; never map an
        // unsealed tail (touching pages past EOF is SIGBUS).
        if (auto map = file->map_prefix(seg_size)) {
            const ConstBytes seg_bytes = map->bytes();
            if (loc.offset + loc.size() > seg_bytes.size()) {
                crc_read_failures_.add();
                throw ConsistencyError(
                    "record extends past mapped segment " +
                    file->path().string());
            }
            const ConstBytes rec = seg_bytes.subspan(loc.offset, loc.size());
            const std::uint32_t crc = get_u32(rec, 0);
            const std::string_view stored_key(
                reinterpret_cast<const char*>(rec.data()) + kRecordHeaderSize,
                loc.klen);
            if (crc32c(rec.subspan(4)) != crc || get_u32(rec, 4) != loc.klen ||
                get_u32(rec, 8) != loc.vlen ||
                rec[12] != static_cast<std::uint8_t>(RecordType::kPut) ||
                stored_key != key) {
                crc_read_failures_.add();
                throw ConsistencyError(
                    "CRC mismatch reading engine record in " +
                    file->path().string() + " at offset " +
                    std::to_string(loc.offset));
            }
            ref_gets_mmap_.add();
            // The view owns the mapping AND the pin: bytes stay mapped
            // and the file stays on disk (unlink deferred) until the
            // last holder drops. Non-copyable with an in-place
            // make_shared: a copied temporary would run this destructor
            // early and release the pin while the view is still live.
            struct PinnedView {
                std::shared_ptr<const SegmentFile::Mapping> map;
                std::shared_ptr<SegmentPin> pin;
                PinnedView(std::shared_ptr<const SegmentFile::Mapping> m,
                           std::shared_ptr<SegmentPin> p)
                    : map(std::move(m)), pin(std::move(p)) {}
                PinnedView(const PinnedView&) = delete;
                PinnedView& operator=(const PinnedView&) = delete;
                ~PinnedView() { pin->release(); }
            };
            auto view = std::make_shared<const PinnedView>(
                std::move(map), std::move(guard.pin));
            return ValueRef{
                rec.subspan(kRecordHeaderSize + loc.klen, loc.vlen),
                std::move(view)};
        }
    }

    // Fallback — unsealed segment, compressed record, or mmap failure:
    // pread into an owned buffer. The pin is released by the guard (the
    // file shared_ptr alone keeps the inode readable); the copy is
    // self-contained.
    ref_gets_copy_.add();
    auto owned = std::make_shared<const Buffer>(
        read_value_checked(loc, *file, key));
    const ConstBytes bytes(*owned);
    return ValueRef{bytes, std::move(owned)};
}

bool LogEngine::contains(std::string_view key) {
    const std::scoped_lock lock(mu_);
    return index_.contains(key);
}

bool LogEngine::remove(std::string_view key) {
    const std::scoped_lock lock(mu_);
    if (!index_.contains(key)) {
        return false;
    }
    append_locked(RecordType::kTombstone, key, {});
    removes_.add();
    return true;
}

std::size_t LogEngine::count() {
    const std::scoped_lock lock(mu_);
    return index_.size();
}

std::uint64_t LogEngine::live_value_bytes() {
    const std::scoped_lock lock(mu_);
    return live_value_bytes_;
}

// ---- append path ------------------------------------------------------------

void LogEngine::append_locked(RecordType type, std::string_view key,
                              ConstBytes value) {
    const Buffer rec = encode_record(type, key, value);
    Segment& active = segments_.at(active_id_);
    const std::uint64_t offset = active.file->append(rec);
    if (cfg_.fsync_appends) {
        active.file->sync();
    }

    const bool overwrote = apply_record_locked(
        type, key, static_cast<std::uint32_t>(value.size()),
        Location{active_id_, offset, static_cast<std::uint32_t>(key.size()),
                 static_cast<std::uint32_t>(value.size())});
    if (overwrote) {
        overwrites_.add();
    }

    ++appends_since_checkpoint_;
    roll_segment_if_needed_locked();
    maybe_schedule_compaction_locked();
    maybe_schedule_checkpoint_locked();
}

bool LogEngine::apply_record_locked(RecordType type, std::string_view key,
                                    std::uint32_t vlen, const Location& loc) {
    if (is_put_type(type)) {
        auto [it, inserted] = index_.try_emplace(std::string(key));
        if (!inserted) {
            account_dead_put_locked(it->second);
        }
        const auto dead = dead_keys_.find(key);
        if (dead != dead_keys_.end()) {
            // The key is live again: its tombstone stops shadowing
            // anything (a later put always wins the replay).
            account_dead_tomb_locked(dead->second);
            dead_keys_.erase(dead);
        }
        it->second = loc;
        it->second.compressed = type == RecordType::kPutCompressed;
        if (it->second.compressed) {
            ++compressed_live_records_;
            compressed_live_bytes_ += vlen;
        }
        segments_.at(loc.segment).live_bytes += loc.size();
        live_value_bytes_ += vlen;
        return !inserted;
    }
    const auto it = index_.find(key);
    if (it != index_.end()) {
        account_dead_put_locked(it->second);
        index_.erase(it);
    }
    auto [dead, inserted] = dead_keys_.try_emplace(std::string(key));
    if (!inserted) {
        account_dead_tomb_locked(dead->second);
    }
    dead->second = loc;
    segments_.at(loc.segment).tomb_bytes += loc.size();
    return false;
}

void LogEngine::open_fresh_segment_locked(std::uint64_t id) {
    auto file = SegmentFile::open(segment_path(id), true);
    if (file->size() != 0) {
        throw ConsistencyError("fresh segment " + segment_path(id).string() +
                               " already exists");
    }
    file->append(encode_segment_header(id, write_version()));
    segments_.emplace(
        id, Segment{.file = std::move(file), .sealed = false});
    active_id_ = id;
}

void LogEngine::roll_segment_if_needed_locked() {
    Segment& active = segments_.at(active_id_);
    if (active.file->size() < cfg_.segment_target_bytes) {
        return;
    }
    active.sealed = true;
    victim_hint_ = true;  // the freshly sealed segment may qualify
    open_fresh_segment_locked(active_id_ + 1);
}

void LogEngine::account_dead_put_locked(const Location& loc) {
    const auto it = segments_.find(loc.segment);
    if (it != segments_.end()) {
        it->second.live_bytes -= loc.size();
        victim_hint_ |= it->second.sealed;
    }
    live_value_bytes_ -= loc.vlen;
    if (loc.compressed) {
        --compressed_live_records_;
        compressed_live_bytes_ -= loc.vlen;
    }
}

void LogEngine::account_dead_tomb_locked(const Location& loc) {
    const auto it = segments_.find(loc.segment);
    if (it != segments_.end()) {
        it->second.tomb_bytes -= loc.size();
        victim_hint_ |= it->second.sealed;
    }
}

// ---- compaction -------------------------------------------------------------

std::optional<std::uint64_t> LogEngine::pick_victim_locked() const {
    for (const auto& [id, seg] : segments_) {
        if (!seg.sealed) {
            continue;
        }
        const std::uint64_t record_bytes =
            seg.file->size() - kSegmentHeaderSize;
        // Current tombstones count as live — they must keep shadowing
        // stale puts in older segments — except in the oldest segment,
        // where nothing older exists and they are droppable dead weight.
        const bool oldest = id == segments_.begin()->first;
        const std::uint64_t effective_live =
            seg.live_bytes + (oldest ? 0 : seg.tomb_bytes);
        if (record_bytes == 0 ||
            static_cast<double>(effective_live) <
                cfg_.compact_min_live_ratio *
                    static_cast<double>(record_bytes)) {
            return id;
        }
    }
    return std::nullopt;
}

void LogEngine::maybe_schedule_compaction_locked() {
    if (!cfg_.background_compaction || compaction_pending_ || closing_ ||
        background_failed_ || pool_ == nullptr || !victim_hint_) {
        return;
    }
    // The hint says something *may* qualify; confirm with the full scan
    // (rare) so the per-append cost stays O(1).
    if (!pick_victim_locked().has_value()) {
        victim_hint_ = false;
        return;
    }
    victim_hint_ = false;
    compaction_pending_ = true;
    pool_->submit([this] {
        {
            const std::scoped_lock lock(mu_);
            compaction_pending_ = false;
            if (closing_) {
                return;
            }
        }
        try {
            compact();
        } catch (const std::exception& e) {
            // Nobody holds this task's future: surface the failure and
            // fail-stop the background chores instead of retrying the
            // same (likely corrupt) victim forever. Reads still verify
            // CRCs and throw per access; manual compact() rethrows.
            background_chore_failed(e.what());
        }
    });
}

void LogEngine::maybe_schedule_checkpoint_locked() {
    if (cfg_.checkpoint_interval_records == 0 || checkpoint_pending_ ||
        closing_ || background_failed_ || pool_ == nullptr ||
        appends_since_checkpoint_ < cfg_.checkpoint_interval_records) {
        return;
    }
    checkpoint_pending_ = true;
    pool_->submit([this] {
        {
            const std::scoped_lock lock(mu_);
            checkpoint_pending_ = false;
            if (closing_) {
                return;
            }
        }
        try {
            checkpoint();
        } catch (const std::exception& e) {
            background_chore_failed(e.what());
        }
    });
}

void LogEngine::background_chore_failed(const char* what) {
    const std::scoped_lock lock(mu_);
    background_failed_ = true;
    background_failures_.add();
    std::fprintf(stderr,
                 "blobseer-engine[%s]: background chore failed, "
                 "disabling background compaction/checkpoints: %s\n",
                 cfg_.dir.c_str(), what);
}

std::size_t LogEngine::compact() {
    const std::scoped_lock serialize(compact_mu_);
    std::size_t n = 0;
    while (compact_one()) {
        ++n;
    }
    if (n > 0 && cfg_.checkpoint_interval_records != 0) {
        // Deleting victims invalidated any checkpoint that referenced
        // them; write a fresh one so the next reopen stays O(live keys).
        bool write = false;
        {
            const std::scoped_lock lock(mu_);
            write = !closing_;
        }
        if (write) {
            checkpoint();
        }
    }
    return n;
}

bool LogEngine::compact_one() {
    std::uint64_t victim_id = 0;
    std::shared_ptr<SegmentFile> file;
    bool oldest = false;
    {
        const std::scoped_lock lock(mu_);
        if (closing_) {
            return false;
        }
        const auto victim = pick_victim_locked();
        if (!victim) {
            return false;
        }
        victim_id = *victim;
        file = segments_.at(victim_id).file;
        oldest = victim_id == segments_.begin()->first;
    }

    // The victim is sealed: its bytes are immutable, so scanning without
    // the lock is safe. Per record, re-check liveness under the lock and
    // re-append live records to the active segment (which updates the
    // index and marks the victim copy dead).
    const auto outcome = for_each_record(
        *file, kSegmentHeaderSize,
        [&](std::uint64_t offset, RecordType type, std::string_view key,
            ConstBytes value) {
            const std::scoped_lock lock(mu_);
            if (closing_) {
                return;
            }
            if (is_put_type(type)) {
                const auto it = index_.find(key);
                if (it == index_.end() || it->second.segment != victim_id ||
                    it->second.offset != offset) {
                    return;  // stale copy; the live one is elsewhere
                }
                if (type == RecordType::kPutCompressed) {
                    // Already a frame: relocate as-is, never re-frame.
                    append_locked(RecordType::kPutCompressed, key, value);
                } else if (cfg_.compress_on_compact &&
                           value.size() >= cfg_.compress_min_bytes) {
                    // Cold-segment recompression: this record survived at
                    // least one segment lifetime, so spend the CPU to
                    // shrink it — but only if framing actually wins.
                    const Buffer frame = codec::encode_frame(kLz4, value);
                    if (frame.size() < value.size()) {
                        append_locked(RecordType::kPutCompressed, key,
                                      frame);
                        compact_compressed_records_.add();
                        compact_raw_bytes_in_.add(value.size());
                        compact_stored_bytes_out_.add(frame.size());
                    } else {
                        append_locked(RecordType::kPut, key, value);
                    }
                } else {
                    append_locked(RecordType::kPut, key, value);
                }
                relocated_records_.add();
                return;
            }
            // Tombstone: only the *current* one of a still-dead key
            // matters (a superseded one is shadowed by a later record
            // either way). It must keep shadowing stale puts in older
            // segments, so relocate it — unless this is the oldest
            // segment, where nothing older exists and it can finally be
            // dropped.
            const auto dead = dead_keys_.find(key);
            if (dead == dead_keys_.end() ||
                dead->second.segment != victim_id ||
                dead->second.offset != offset) {
                return;
            }
            if (oldest) {
                account_dead_tomb_locked(dead->second);
                dead_keys_.erase(dead);
            } else {
                append_locked(RecordType::kTombstone, key, {});
                relocated_records_.add();
            }
        });
    if (!outcome.clean) {
        throw ConsistencyError("corrupt record while compacting " +
                               file->path().string());
    }

    std::shared_ptr<SegmentPin> pin;
    {
        const std::scoped_lock lock(mu_);
        if (closing_) {
            return false;
        }
        reclaimed_bytes_.add(file->size());
        compactions_.add();
        pin = segments_.at(victim_id).pin;
        segments_.erase(victim_id);
    }
    // Hand the unlink to the pin: immediate when no get_ref() view is
    // live, deferred to the last view release otherwise (a pinned mmap
    // view must keep reading byte-identical data — see DESIGN.md §15.3).
    // In-flight preads are safe either way; the SegmentFile shared_ptr
    // keeps the inode alive.
    if (pin->pinned()) {
        deferred_unlinks_.add();
    }
    pin->retire(file->path());
    return true;
}

// ---- checkpoint -------------------------------------------------------------

void LogEngine::checkpoint() {
    // Snapshot under the lock; do the file I/O (append, fsync, rename)
    // with it released so the data plane never stalls on checkpoint disk
    // latency.
    Buffer out;
    std::uint64_t seq = 0;
    {
        const std::scoped_lock lock(mu_);
        out.insert(out.end(), kCheckpointMagic.begin(),
                   kCheckpointMagic.end());
        // v2 whenever compressed entries exist (or may soon), v1
        // otherwise so no-compression deployments stay byte-identical.
        put_u32(out, compressed_live_records_ > 0 ? kFormatVersion
                                                  : write_version());
        put_u32(out, 0);  // reserved
        put_u64(out, active_id_);
        put_u64(out, segments_.at(active_id_).file->size());
        put_u64(out, index_.size() + dead_keys_.size());
        const auto emit = [&out](const std::string& key, const Location& loc,
                                 RecordType kind) {
            put_u32(out, loc.klen);
            put_u32(out, loc.vlen);
            put_u64(out, loc.segment);
            put_u64(out, loc.offset);
            out.push_back(static_cast<std::uint8_t>(kind));
            out.insert(out.end(), key.begin(), key.end());
        };
        for (const auto& [key, loc] : index_) {
            emit(key, loc,
                 loc.compressed ? RecordType::kPutCompressed
                                : RecordType::kPut);
        }
        for (const auto& [key, loc] : dead_keys_) {
            emit(key, loc, RecordType::kTombstone);
        }
        put_u32(out, crc32c(out));
        seq = next_checkpoint_seq_++;
        // The snapshot covers every append so far; reset at snapshot
        // time (a failed write below just means the next open rescans).
        appends_since_checkpoint_ = 0;
    }

    const auto final_path = checkpoint_path(seq);
    const auto tmp_path =
        std::filesystem::path(final_path.string() + ".tmp");
    {
        auto file = SegmentFile::open(tmp_path, true);
        file->truncate(0);
        file->append(out);
        file->sync();
    }
    std::filesystem::rename(tmp_path, final_path);
    checkpoints_written_.add();

    // Older checkpoints are now strictly worse; reclaim them.
    for (const auto& entry :
         std::filesystem::directory_iterator(cfg_.dir)) {
        const auto old =
            parse_numbered(entry.path().filename().string(), "ckpt-", ".idx");
        if (old && *old < seq) {
            std::error_code ec;
            std::filesystem::remove(entry.path(), ec);
        }
    }
}

// ---- misc -------------------------------------------------------------------

void LogEngine::wait_idle() {
    for (;;) {
        pool_->submit([] {}).get();  // single worker: drains earlier tasks
        const std::scoped_lock lock(mu_);
        if (!compaction_pending_ && !checkpoint_pending_) {
            return;
        }
    }
}

EngineStatsSnapshot LogEngine::stats() {
    const std::scoped_lock lock(mu_);
    EngineStatsSnapshot s;
    s.live_keys = index_.size();
    s.live_value_bytes = live_value_bytes_;
    for (const auto& [id, seg] : segments_) {
        (void)id;
        s.disk_bytes += seg.file->size();
    }
    s.segment_count = segments_.size();
    s.appends = appends_.get();
    s.overwrites = overwrites_.get();
    s.removes = removes_.get();
    s.gets = gets_.get();
    s.compactions = compactions_.get();
    s.relocated_records = relocated_records_.get();
    s.reclaimed_bytes = reclaimed_bytes_.get();
    s.ref_gets_mmap = ref_gets_mmap_.get();
    s.ref_gets_copy = ref_gets_copy_.get();
    s.deferred_unlinks = deferred_unlinks_.get();
    s.compressed_live_records = compressed_live_records_;
    s.compressed_live_bytes = compressed_live_bytes_;
    s.compact_compressed_records = compact_compressed_records_.get();
    s.compact_raw_bytes_in = compact_raw_bytes_in_.get();
    s.compact_stored_bytes_out = compact_stored_bytes_out_.get();
    s.checkpoints_written = checkpoints_written_.get();
    s.recovered_from_checkpoint = recovered_from_checkpoint_;
    s.torn_bytes_discarded = torn_bytes_discarded_.get();
    s.crc_read_failures = crc_read_failures_.get();
    s.background_failures = background_failures_.get();
    return s;
}

void LogEngine::scan(
    const std::function<void(std::string_view, ConstBytes)>& fn) {
    // Snapshot the segment list under the lock, then walk WITHOUT it.
    // The contract (no concurrent writer; startup replay) makes the
    // unlocked walk safe, and it is required for deadlock-freedom:
    // consumer callbacks take their own locks (e.g. the version
    // manager's stripe/map mutexes), and those same locks are held
    // around put() at runtime — holding the engine mutex across the
    // callbacks would order it before every consumer lock, the exact
    // inversion of the append path.
    std::vector<std::pair<std::uint64_t, std::shared_ptr<SegmentFile>>>
        files;
    {
        const std::scoped_lock lock(mu_);
        files.reserve(segments_.size());
        for (const auto& [id, seg] : segments_) {
            files.emplace_back(id, seg.file);
        }
    }
    for (const auto& [id, file] : files) {
        const auto outcome = for_each_record(
            *file, kSegmentHeaderSize,
            [&](std::uint64_t offset, RecordType type, std::string_view key,
                ConstBytes value) {
                if (!is_put_type(type)) {
                    return;
                }
                // Unlocked index_ read: no writer is active by the
                // scan contract, so the index is frozen.
                const auto it = index_.find(key);
                if (it != index_.end() && it->second.segment == id &&
                    it->second.offset == offset) {
                    if (type == RecordType::kPutCompressed) {
                        // Consumers replay raw values; the frame is a
                        // storage detail.
                        const Buffer raw = codec::decode_frame(kLz4, value);
                        fn(key, raw);
                    } else {
                        fn(key, value);
                    }
                }
            });
        if (!outcome.clean) {
            // Pre-watermark bytes were not re-verified at open (the
            // checkpoint vouched for locations, not contents): a bad
            // record here must fail the scan loudly, not truncate the
            // consumer's view of the log.
            throw ConsistencyError("corrupt record while scanning " +
                                   file->path().string() +
                                   " at offset " +
                                   std::to_string(outcome.end_offset));
        }
    }
}

std::filesystem::path LogEngine::segment_path(std::uint64_t id) const {
    return cfg_.dir / ("seg-" + pad10(id) + ".log");
}

std::filesystem::path LogEngine::checkpoint_path(std::uint64_t seq) const {
    return cfg_.dir / ("ckpt-" + pad10(seq) + ".idx");
}

}  // namespace blobseer::engine
