/// \file format.hpp
/// \brief On-disk layout of the log-structured storage engine.
///
/// Three file kinds live in an engine directory (DESIGN.md §8.1):
///
///   seg-<id>.log   bounded append-only segments. 24-byte header
///                  [magic 8B | format u32 | reserved u32 | id u64]
///                  followed by records:
///                  [crc32c u32 | klen u32 | vlen u32 | type u8 | key | value]
///                  The CRC covers every byte after itself (klen..value),
///                  so a torn or corrupted record can never be mistaken
///                  for a committed one.
///
///   ckpt-<seq>.idx index checkpoints: the key->location map of live
///                  records and current tombstones (entry layout
///                  [klen u32 | vlen u32 | segment u64 | offset u64 |
///                  kind u8 | key]) plus a (segment, offset) watermark;
///                  reopen loads the newest valid checkpoint and replays
///                  only the log suffix past the watermark. Whole file
///                  is CRC-trailed.
///
/// All integers are little-endian with explicit byte shuffling (the same
/// convention as the RPC wire format, DESIGN.md §7.1), so files are
/// portable across hosts.

#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/buffer.hpp"

namespace blobseer::engine {

inline constexpr std::array<std::uint8_t, 8> kSegmentMagic = {
    'B', 'S', 'L', 'G', 'S', 'E', 'G', '1'};
inline constexpr std::array<std::uint8_t, 8> kCheckpointMagic = {
    'B', 'S', 'L', 'G', 'C', 'K', 'P', '1'};

/// On-disk format version, bumped on incompatible layout changes.
/// Version history:
///   1  original layout (record types kPut/kTombstone only).
///   2  adds the kPutCompressed record type: the value bytes are a
///      codec frame (codec/codec.hpp) instead of the raw value. The
///      record and checkpoint-entry layouts are unchanged — the CRC
///      still covers the stored (compressed) bytes — so v1 readers of
///      the *structure* only differ in the extra type byte value.
/// Readers accept kMinFormatVersion..kFormatVersion; writers emit
/// version 2 only when compact-time compression is enabled, so a
/// deployment that never turns it on keeps producing byte-identical v1
/// files.
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr std::uint32_t kMinFormatVersion = 1;

[[nodiscard]] constexpr bool supported_format_version(
    std::uint32_t v) noexcept {
    return v >= kMinFormatVersion && v <= kFormatVersion;
}

inline constexpr std::size_t kSegmentHeaderSize = 24;
inline constexpr std::size_t kRecordHeaderSize = 13;  // crc + klen + vlen + type
inline constexpr std::size_t kCheckpointHeaderSize = 40;

/// Sanity bounds applied while scanning: a length field beyond these is
/// treated as a torn/corrupt record rather than an allocation request.
inline constexpr std::uint32_t kMaxKeyLen = 1u << 20;         // 1 MiB
inline constexpr std::uint32_t kMaxValueLen = 1u << 30;       // 1 GiB

enum class RecordType : std::uint8_t {
    kPut = 1,        ///< key/value insertion (or overwrite)
    kTombstone = 2,  ///< deletion marker; value is empty
    /// Put whose value bytes are a codec frame (format v2; written by
    /// the compactor when cold-segment recompression is enabled). The
    /// CRC covers the stored frame; get() decompresses transparently.
    kPutCompressed = 3,
};

[[nodiscard]] constexpr bool valid_record_type(std::uint8_t t) noexcept {
    return t == static_cast<std::uint8_t>(RecordType::kPut) ||
           t == static_cast<std::uint8_t>(RecordType::kTombstone) ||
           t == static_cast<std::uint8_t>(RecordType::kPutCompressed);
}

/// Both flavors of live-value record.
[[nodiscard]] constexpr bool is_put_type(RecordType t) noexcept {
    return t == RecordType::kPut || t == RecordType::kPutCompressed;
}

// ---- little-endian primitives ----------------------------------------------

inline void put_u32(Buffer& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
    }
}

inline void put_u64(Buffer& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
    }
}

/// Caller guarantees pos + 4 <= in.size().
[[nodiscard]] inline std::uint32_t get_u32(ConstBytes in,
                                           std::size_t pos) noexcept {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(in[pos + static_cast<std::size_t>(i)])
             << (i * 8);
    }
    return v;
}

/// Caller guarantees pos + 8 <= in.size().
[[nodiscard]] inline std::uint64_t get_u64(ConstBytes in,
                                           std::size_t pos) noexcept {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(in[pos + static_cast<std::size_t>(i)])
             << (i * 8);
    }
    return v;
}

/// Overwrite 4 bytes at \p pos (used to patch a CRC placeholder).
inline void poke_u32(Buffer& out, std::size_t pos, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out[pos + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (i * 8));
    }
}

// ---- framing helpers --------------------------------------------------------

[[nodiscard]] inline std::uint64_t record_size(std::uint32_t klen,
                                               std::uint32_t vlen) noexcept {
    return kRecordHeaderSize + klen + vlen;
}

/// 24-byte segment header for segment \p id, stamped \p version.
[[nodiscard]] inline Buffer encode_segment_header(
    std::uint64_t id, std::uint32_t version = kFormatVersion) {
    Buffer out;
    out.reserve(kSegmentHeaderSize);
    out.insert(out.end(), kSegmentMagic.begin(), kSegmentMagic.end());
    put_u32(out, version);
    put_u32(out, 0);  // reserved
    put_u64(out, id);
    return out;
}

/// Parse a segment header; returns the segment id or nullopt if the
/// bytes are not a well-formed header of a supported format version.
[[nodiscard]] inline std::optional<std::uint64_t> decode_segment_header(
    ConstBytes in) {
    if (in.size() < kSegmentHeaderSize) {
        return std::nullopt;
    }
    for (std::size_t i = 0; i < kSegmentMagic.size(); ++i) {
        if (in[i] != kSegmentMagic[i]) {
            return std::nullopt;
        }
    }
    if (!supported_format_version(get_u32(in, 8))) {
        return std::nullopt;
    }
    return get_u64(in, 16);
}

}  // namespace blobseer::engine
