/// \file log_engine.hpp
/// \brief Log-structured key/value storage engine.
///
/// Replaces file-per-object persistence (one inode + one syscall pair per
/// object) with an append-only log: puts and tombstones are checksummed,
/// length-prefixed records appended to bounded segment files; an in-memory
/// index maps each live key to its (segment, offset, lengths) location.
/// Opening a directory recovers the index by loading the newest valid
/// checkpoint and replaying only the log suffix past its watermark —
/// O(live keys) instead of O(log bytes) — and tolerates a torn tail left
/// by a crash mid-append (the torn suffix is discarded; everything before
/// it is recovered exactly). A background compactor, driven by
/// common::ThreadPool, rewrites low-liveness sealed segments to reclaim
/// space freed by overwrites and removes.
///
/// One engine serves three persistence layers: chunk::LogStore (data
/// providers), meta::LogMetaStore (metadata providers) and the version
/// manager's operation journal. On-disk format, invariants and the
/// crash-recovery contract: DESIGN.md §8.
///
/// Thread-safe. get() never serves bytes whose CRC does not match — it
/// throws ConsistencyError instead (corruption is surfaced, not masked).

#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/buffer.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "engine/format.hpp"
#include "engine/segment_file.hpp"

namespace blobseer::engine {

struct EngineConfig {
    /// Directory holding segments and checkpoints (created if absent).
    std::filesystem::path dir;

    /// Roll to a new segment once the active one reaches this size.
    std::uint64_t segment_target_bytes = 64ULL << 20;

    /// Write an index checkpoint every N appended records (0 = only on
    /// clean close / explicit checkpoint()).
    std::uint64_t checkpoint_interval_records = 16384;

    /// Sealed segments whose live fraction drops below this become
    /// compaction victims.
    double compact_min_live_ratio = 0.5;

    /// Run the compactor automatically on a background thread. Turn off
    /// for journal-style workloads that need scan() to preserve append
    /// order (compaction relocates records).
    bool background_compaction = true;

    /// fsync after every append. Off by default: records survive process
    /// crashes either way (the write hits the page cache synchronously);
    /// this knob buys power-failure durability at a large cost.
    bool fsync_appends = false;

    /// Cold-segment recompression (DESIGN.md §14.3): when the compactor
    /// relocates a live record out of a victim segment, store the value
    /// as an LZ4 codec frame if that shrinks it (kPutCompressed, format
    /// v2). Reads decompress transparently whether or not this is set;
    /// off by default so a deployment that never opts in keeps writing
    /// byte-identical v1 files.
    bool compress_on_compact = false;

    /// Values below this size skip the compression attempt when
    /// relocating (framing overhead dominates tiny values).
    std::uint32_t compress_min_bytes = 64;
};

/// Point-in-time observability snapshot (all counters monotonic except
/// the gauges in the first block).
struct EngineStatsSnapshot {
    std::uint64_t live_keys = 0;
    std::uint64_t live_value_bytes = 0;  ///< payload bytes of live records
    std::uint64_t disk_bytes = 0;        ///< total segment file bytes
    std::uint64_t segment_count = 0;

    std::uint64_t appends = 0;
    std::uint64_t overwrites = 0;
    std::uint64_t removes = 0;
    std::uint64_t gets = 0;

    std::uint64_t compactions = 0;
    std::uint64_t relocated_records = 0;
    std::uint64_t reclaimed_bytes = 0;

    /// get_ref() outcomes: served from a shared segment mapping vs.
    /// pread-copied (unsealed segment, compressed record, or mmap
    /// failure), and victim files whose unlink the compactor deferred to
    /// the last live pinned view.
    std::uint64_t ref_gets_mmap = 0;
    std::uint64_t ref_gets_copy = 0;
    std::uint64_t deferred_unlinks = 0;

    /// Compact-time recompression (zero unless compress_on_compact).
    std::uint64_t compressed_live_records = 0;  ///< gauge
    std::uint64_t compressed_live_bytes = 0;    ///< gauge, stored bytes
    std::uint64_t compact_compressed_records = 0;
    std::uint64_t compact_raw_bytes_in = 0;     ///< pre-compression bytes
    std::uint64_t compact_stored_bytes_out = 0; ///< post-compression bytes

    std::uint64_t checkpoints_written = 0;
    bool recovered_from_checkpoint = false;
    std::uint64_t torn_bytes_discarded = 0;
    std::uint64_t crc_read_failures = 0;
    /// Background chores that threw (their futures are discarded, so
    /// failures latch background_compaction/checkpoints off and count
    /// here; reads keep surfacing corruption per access).
    std::uint64_t background_failures = 0;
};

/// Per-segment pin coordinating live get_ref() views with the compactor's
/// unlink. Readers add() under the engine lock (so a pin always lands
/// before the compactor can retire the segment) and release() when the
/// last view owner drops; the compactor calls retire() instead of
/// unlinking directly. Whichever of "last release" and "retire" happens
/// second removes the file — the mutex-guarded path swap makes the unlink
/// exactly-once.
class SegmentPin {
  public:
    void add() noexcept { count_.fetch_add(1); }

    void release() noexcept {
        if (count_.fetch_sub(1) == 1 && retired_.load()) {
            unlink_now();
        }
    }

    /// Hand the file over for deferred deletion. Unlinks immediately when
    /// no view is pinned.
    void retire(std::filesystem::path path) {
        {
            const std::scoped_lock lock(mu_);
            path_ = std::move(path);
        }
        retired_.store(true);
        if (count_.load() == 0) {
            unlink_now();
        }
    }

    [[nodiscard]] bool pinned() const noexcept { return count_.load() > 0; }

  private:
    void unlink_now() noexcept {
        std::filesystem::path p;
        {
            const std::scoped_lock lock(mu_);
            p.swap(path_);
        }
        if (!p.empty()) {
            std::error_code ec;
            std::filesystem::remove(p, ec);
        }
    }

    std::atomic<std::uint64_t> count_{0};
    std::atomic<bool> retired_{false};
    std::mutex mu_;  // guards path_ (one-shot unlink handoff)
    std::filesystem::path path_;
};

/// Borrowed, CRC-verified view of a live value. `bytes` stays valid (and
/// byte-identical, even across compaction) for as long as `keepalive` is
/// held: it owns the segment mapping plus a SegmentPin reference that
/// defers the compactor's unlink. See DESIGN.md §15.3.
struct ValueRef {
    ConstBytes bytes{};
    std::shared_ptr<const void> keepalive{};
};

class LogEngine {
  public:
    /// Open (creating if needed) the engine rooted at cfg.dir, running
    /// crash recovery. Throws ConsistencyError if a *sealed* segment is
    /// corrupt (a torn tail on the newest segment is recovered silently).
    explicit LogEngine(EngineConfig cfg);

    /// Clean close: drains background work and writes a final checkpoint
    /// (when checkpointing is enabled) so the next open is O(live keys).
    ~LogEngine();

    LogEngine(const LogEngine&) = delete;
    LogEngine& operator=(const LogEngine&) = delete;

    // ---- data plane ------------------------------------------------------

    /// Insert or overwrite \p key.
    void put(std::string_view key, ConstBytes value);

    /// Insert \p key only if it is not live, atomically with the check
    /// (the idempotent-put primitive for immutable chunks/nodes: a
    /// concurrent duplicate never appends twice). Returns true if a
    /// record was appended.
    bool put_if_absent(std::string_view key, ConstBytes value);

    /// Fetch the live value of \p key, or nullopt if absent. Throws
    /// ConsistencyError if the stored record fails its CRC.
    [[nodiscard]] std::optional<Buffer> get(std::string_view key);

    /// Zero-copy variant of get(): returns a CRC-verified view served
    /// directly from the mmap'd segment when possible (sealed segment,
    /// uncompressed record), falling back to a pread copy otherwise.
    /// Either way the returned bytes are valid and immutable for the
    /// keepalive's lifetime — a pinned view defers the compactor's
    /// unlink of its segment file. Same error contract as get().
    [[nodiscard]] std::optional<ValueRef> get_ref(std::string_view key);

    [[nodiscard]] bool contains(std::string_view key);

    /// Append a tombstone for \p key. Returns false if the key was not
    /// live (no tombstone written).
    bool remove(std::string_view key);

    /// Live keys.
    [[nodiscard]] std::size_t count();

    /// Payload bytes of live records.
    [[nodiscard]] std::uint64_t live_value_bytes();

    // ---- maintenance -----------------------------------------------------

    /// Write an index checkpoint now.
    void checkpoint();

    /// Compact every victim segment now (foreground). Returns the number
    /// of segments rewritten.
    std::size_t compact();

    /// Block until queued background work (compaction/checkpoint) drains.
    void wait_idle();

    [[nodiscard]] EngineStatsSnapshot stats();

    /// Visit every live record in log (append) order: the replay hook for
    /// journal consumers. Call only while no writer is active (e.g. at
    /// startup); the walk itself runs WITHOUT the engine lock so that
    /// callbacks may take consumer locks that are also held around put()
    /// at runtime (no lock-order inversion against the append path).
    void scan(const std::function<void(std::string_view key,
                                       ConstBytes value)>& fn);

    [[nodiscard]] const std::filesystem::path& directory() const noexcept {
        return cfg_.dir;
    }

  private:
    struct Location {
        std::uint64_t segment = 0;
        std::uint64_t offset = 0;  // of the record header within the file
        std::uint32_t klen = 0;
        std::uint32_t vlen = 0;  // stored bytes (the frame, if compressed)
        /// The stored value is a codec frame (record type kPutCompressed).
        bool compressed = false;

        [[nodiscard]] std::uint64_t size() const noexcept {
            return record_size(klen, vlen);
        }
    };

    struct Segment {
        std::shared_ptr<SegmentFile> file;
        /// Bytes of put records the index still references.
        std::uint64_t live_bytes = 0;
        /// Bytes of *current* tombstones (see dead_keys_). They count as
        /// live for compaction targeting — a tombstone must keep
        /// shadowing stale puts in older segments — except in the oldest
        /// segment, where nothing older exists and they are pure dead
        /// weight.
        std::uint64_t tomb_bytes = 0;
        bool sealed = false;
        /// Live get_ref() views of this segment; the compactor retires
        /// the file through it instead of unlinking directly.
        std::shared_ptr<SegmentPin> pin = std::make_shared<SegmentPin>();
    };

    struct ScanOutcome {
        std::uint64_t end_offset = 0;
        bool clean = false;
    };

    /// flock-held exclusive lock on the engine directory: two engines
    /// appending to the same segments would interleave records at
    /// overlapping offsets, so a double-open (operator double-start, a
    /// restart racing a dying daemon) must fail cleanly at construction.
    class DirLock {
      public:
        explicit DirLock(const std::filesystem::path& dir);
        ~DirLock();
        DirLock(const DirLock&) = delete;
        DirLock& operator=(const DirLock&) = delete;

      private:
        int fd_ = -1;
    };

    // Recovery.
    void recover();
    bool try_load_checkpoint(const std::filesystem::path& file);

    /// Walk records of one segment from \p from, invoking \p fn for each
    /// fully-committed one; stops at the first torn/corrupt record.
    ScanOutcome for_each_record(
        SegmentFile& file, std::uint64_t from,
        const std::function<void(std::uint64_t offset, RecordType type,
                                 std::string_view key, ConstBytes value)>& fn);

    /// Bounds-check one user key/value pair.
    static void validate_kv(std::string_view key, ConstBytes value);

    /// The unlocked half of get(): pread + CRC-verify + (if compressed)
    /// decode the record at \p loc. Throws ConsistencyError on mismatch.
    [[nodiscard]] Buffer read_value_checked(const Location& loc,
                                            SegmentFile& file,
                                            std::string_view key);

    // Append path (callers hold mu_).
    void append_locked(RecordType type, std::string_view key,
                       ConstBytes value);
    void open_fresh_segment_locked(std::uint64_t id);
    void roll_segment_if_needed_locked();
    void account_dead_put_locked(const Location& loc);
    void account_dead_tomb_locked(const Location& loc);

    /// Index/liveness effect of one scanned record (recovery replay and
    /// append share it). Returns true if a put replaced a live key.
    bool apply_record_locked(RecordType type, std::string_view key,
                             std::uint32_t vlen, const Location& loc);

    // Background work.
    [[nodiscard]] std::optional<std::uint64_t> pick_victim_locked() const;
    void maybe_schedule_compaction_locked();
    void maybe_schedule_checkpoint_locked();
    bool compact_one();  ///< returns false when no victim remains

    /// Record a failed background chore and fail-stop further ones (the
    /// task's future is discarded, so this is the only surfacing path).
    void background_chore_failed(const char* what);

    [[nodiscard]] std::filesystem::path segment_path(std::uint64_t id) const;
    [[nodiscard]] std::filesystem::path checkpoint_path(
        std::uint64_t seq) const;

    const EngineConfig cfg_;
    DirLock dir_lock_;  // initialized right after cfg_, before recovery

    /// Transparent hashing: lookups take string_view without allocating
    /// a temporary std::string on the hot path.
    struct KeyHash {
        using is_transparent = void;
        std::size_t operator()(std::string_view s) const noexcept {
            return std::hash<std::string_view>{}(s);
        }
    };
    using KeyMap =
        std::unordered_map<std::string, Location, KeyHash, std::equal_to<>>;

    /// Segment/checkpoint header version this engine writes (v2 only
    /// when compression may produce kPutCompressed records).
    [[nodiscard]] std::uint32_t write_version() const noexcept {
        return cfg_.compress_on_compact ? kFormatVersion : kMinFormatVersion;
    }

    std::mutex mu_;  // guards index_, segments_, gauges, scheduling flags
    KeyMap index_;
    /// Current tombstone of each removed key. Needed so compaction can
    /// tell a tombstone that still shadows stale puts (relocate it) from
    /// a superseded one (drop it), and so checkpoints restore exactly the
    /// shadowing state a full scan would rebuild.
    KeyMap dead_keys_;
    std::map<std::uint64_t, Segment> segments_;  // ordered by segment id
    std::uint64_t active_id_ = 0;
    std::uint64_t live_value_bytes_ = 0;
    std::uint64_t compressed_live_records_ = 0;  // gauges; guarded by mu_
    std::uint64_t compressed_live_bytes_ = 0;
    std::uint64_t appends_since_checkpoint_ = 0;
    std::uint64_t next_checkpoint_seq_ = 1;
    bool compaction_pending_ = false;
    bool checkpoint_pending_ = false;
    bool background_failed_ = false;  // fail-stop latch for chores
    /// O(1) append-path gate for the O(#segments) victim scan: set when
    /// an event that can create a victim happens (a sealed segment lost
    /// liveness, or a segment sealed), cleared when a scan finds none.
    /// Starts true so post-recovery dead space gets one look.
    bool victim_hint_ = true;
    bool closing_ = false;
    bool recovered_from_checkpoint_ = false;
    std::uint64_t ckpt_watermark_seg_ = 0;  // set by try_load_checkpoint
    std::uint64_t ckpt_watermark_off_ = 0;

    std::mutex compact_mu_;  // serializes foreground and background compaction

    Counter appends_;
    Counter overwrites_;
    Counter removes_;
    Counter gets_;
    Counter compactions_;
    Counter relocated_records_;
    Counter reclaimed_bytes_;
    Counter ref_gets_mmap_;
    Counter ref_gets_copy_;
    Counter deferred_unlinks_;
    Counter compact_compressed_records_;
    Counter compact_raw_bytes_in_;
    Counter compact_stored_bytes_out_;
    Counter checkpoints_written_;
    Counter torn_bytes_discarded_;
    Counter crc_read_failures_;
    Counter background_failures_;

    /// One worker is enough: compaction and checkpointing are sequential
    /// background chores, not a parallel workload.
    std::unique_ptr<ThreadPool> pool_;
    /// Registry bindings; declared last so they unbind before the
    /// counters above destruct.
    MetricsGroup metrics_;
};

}  // namespace blobseer::engine
