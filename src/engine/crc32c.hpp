/// \file crc32c.hpp
/// \brief CRC32C (Castagnoli) checksum for storage-engine records.
///
/// Every record and checkpoint the log engine writes is protected by
/// CRC32C (the polynomial used by iSCSI, ext4 and most storage engines,
/// chosen over CRC32 for its better error-detection properties on short
/// frames). Table-driven, byte-at-a-time: the engine's record framing is
/// I/O-bound, not checksum-bound. The incremental init/update/final form
/// lets callers checksum a record spread over several buffers without
/// concatenating them. See DESIGN.md §8.1 for the on-disk format this
/// protects.

#pragma once

#include <array>
#include <cstdint>

#include "common/buffer.hpp"

namespace blobseer::engine {

namespace detail {

/// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table;
/// table[k][i] advances a byte through k additional zero bytes, letting
/// the update loop fold 8 input bytes per iteration (~4-8x faster than
/// byte-at-a-time — reopen CRCs a whole multi-MB checkpoint).
[[nodiscard]] constexpr std::array<std::array<std::uint32_t, 256>, 8>
make_crc32c_tables() {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1u) != 0 ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
        }
        t[0][i] = c;
    }
    for (std::size_t k = 1; k < 8; ++k) {
        for (std::uint32_t i = 0; i < 256; ++i) {
            t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
        }
    }
    return t;
}

inline constexpr std::array<std::array<std::uint32_t, 256>, 8> kCrc32cTables =
    make_crc32c_tables();

/// Little-endian 32-bit load via shifts (endian-portable; compiles to a
/// single load on little-endian targets).
[[nodiscard]] inline std::uint32_t load_le32(const std::uint8_t* p) noexcept {
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace detail

/// Start an incremental CRC32C computation.
[[nodiscard]] constexpr std::uint32_t crc32c_init() noexcept {
    return 0xFFFFFFFFu;
}

/// Fold \p data into an in-progress CRC32C state.
[[nodiscard]] inline std::uint32_t crc32c_update(std::uint32_t state,
                                                 ConstBytes data) noexcept {
    const auto& t = detail::kCrc32cTables;
    const std::uint8_t* p = data.data();
    std::size_t n = data.size();
    while (n >= 8) {
        const std::uint32_t lo = state ^ detail::load_le32(p);
        const std::uint32_t hi = detail::load_le32(p + 4);
        state = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
                t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^
                t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
                t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
        p += 8;
        n -= 8;
    }
    while (n > 0) {
        state = t[0][(state ^ *p) & 0xFFu] ^ (state >> 8);
        ++p;
        --n;
    }
    return state;
}

/// Finish an incremental CRC32C computation.
[[nodiscard]] constexpr std::uint32_t crc32c_final(
    std::uint32_t state) noexcept {
    return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC32C of a byte span.
[[nodiscard]] inline std::uint32_t crc32c(ConstBytes data) noexcept {
    return crc32c_final(crc32c_update(crc32c_init(), data));
}

}  // namespace blobseer::engine
