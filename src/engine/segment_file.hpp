/// \file segment_file.hpp
/// \brief POSIX file wrapper for one log segment.
///
/// Appends go through positional writes at a tracked tail offset (the
/// engine mutex serializes appenders); reads use pread and are safe from
/// any number of threads concurrently with appends. The compactor unlinks
/// a segment while readers may still hold a shared_ptr to it — POSIX
/// keeps the inode alive until the last descriptor closes, so in-flight
/// reads finish against the unlinked file. See DESIGN.md §8.

#pragma once

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>

#include "common/buffer.hpp"
#include "common/error.hpp"

namespace blobseer::engine {

class SegmentFile {
  public:
    /// Open \p path read-write, creating it if \p create. Throws Error on
    /// failure.
    static std::shared_ptr<SegmentFile> open(std::filesystem::path path,
                                             bool create) {
        const int flags = O_RDWR | (create ? O_CREAT : 0);
        const int fd = ::open(path.c_str(), flags, 0644);
        if (fd < 0) {
            throw Error("cannot open segment " + path.string() + ": " +
                        std::strerror(errno));
        }
        struct stat st {};
        if (::fstat(fd, &st) != 0) {
            const int err = errno;
            ::close(fd);
            throw Error("cannot stat segment " + path.string() + ": " +
                        std::strerror(err));
        }
        return std::shared_ptr<SegmentFile>(new SegmentFile(
            std::move(path), fd, static_cast<std::uint64_t>(st.st_size)));
    }

    SegmentFile(const SegmentFile&) = delete;
    SegmentFile& operator=(const SegmentFile&) = delete;

    ~SegmentFile() {
        if (fd_ >= 0) {
            ::close(fd_);
        }
    }

    /// Append \p data at the current tail. Callers serialize appends (the
    /// engine mutex). Returns the offset the data was written at.
    std::uint64_t append(ConstBytes data) {
        const std::uint64_t at = size_;
        std::size_t done = 0;
        while (done < data.size()) {
            const ssize_t n = ::pwrite(
                fd_, data.data() + done, data.size() - done,
                static_cast<off_t>(at + done));
            if (n < 0) {
                if (errno == EINTR) {
                    continue;
                }
                throw Error("segment write failed on " + path_.string() +
                            ": " + std::strerror(errno));
            }
            done += static_cast<std::size_t>(n);
        }
        size_ += data.size();
        return at;
    }

    /// Fill \p out from \p offset. Returns false on a short read (the
    /// caller decides whether that is a torn tail or corruption).
    [[nodiscard]] bool read_exact(std::uint64_t offset,
                                  MutableBytes out) const {
        std::size_t done = 0;
        while (done < out.size()) {
            const ssize_t n =
                ::pread(fd_, out.data() + done, out.size() - done,
                        static_cast<off_t>(offset + done));
            if (n < 0) {
                if (errno == EINTR) {
                    continue;
                }
                throw Error("segment read failed on " + path_.string() +
                            ": " + std::strerror(errno));
            }
            if (n == 0) {
                return false;  // EOF
            }
            done += static_cast<std::size_t>(n);
        }
        return true;
    }

    /// Discard everything past \p new_size (torn-tail recovery).
    void truncate(std::uint64_t new_size) {
        if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
            throw Error("segment truncate failed on " + path_.string() +
                        ": " + std::strerror(errno));
        }
        size_ = new_size;
    }

    /// Flush file data to stable storage (durability knob; the engine
    /// only calls this when EngineConfig::fsync_appends is set).
    void sync() {
        if (::fsync(fd_) != 0) {
            throw Error("segment fsync failed on " + path_.string() + ": " +
                        std::strerror(errno));
        }
    }

    [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
    [[nodiscard]] const std::filesystem::path& path() const noexcept {
        return path_;
    }

    /// Read-only mapping of a file prefix. Holding the shared_ptr keeps
    /// the pages valid; the last owner munmaps.
    class Mapping {
      public:
        Mapping(const std::uint8_t* data, std::size_t len) noexcept
            : data_(data), len_(len) {}
        Mapping(const Mapping&) = delete;
        Mapping& operator=(const Mapping&) = delete;
        ~Mapping() {
            if (data_ != nullptr) {
                ::munmap(const_cast<std::uint8_t*>(data_), len_);
            }
        }
        [[nodiscard]] ConstBytes bytes() const noexcept {
            return {data_, len_};
        }

      private:
        const std::uint8_t* data_;
        std::size_t len_;
    };

    /// Map the first \p len bytes read-only, or return nullptr if mmap
    /// fails (caller falls back to pread). The mapping is cached: sealed
    /// segments are mapped once at their final size and every reader
    /// shares the same pages. Never call with len beyond the durable file
    /// size — touching pages past EOF raises SIGBUS.
    [[nodiscard]] std::shared_ptr<const Mapping> map_prefix(
        std::uint64_t len) {
        const std::scoped_lock lock(map_mu_);
        if (map_ && map_->bytes().size() >= len) {
            return map_;
        }
        void* p = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, fd_, 0);
        if (p == MAP_FAILED) {
            return nullptr;
        }
        map_ = std::make_shared<const Mapping>(
            static_cast<const std::uint8_t*>(p), len);
        return map_;
    }

  private:
    SegmentFile(std::filesystem::path path, int fd, std::uint64_t size)
        : path_(std::move(path)), fd_(fd), size_(size) {}

    const std::filesystem::path path_;
    const int fd_;
    std::uint64_t size_;  // tail offset; guarded by the engine mutex

    std::mutex map_mu_;  // guards map_ creation
    std::shared_ptr<const Mapping> map_;
};

}  // namespace blobseer::engine
