/// \file sim_network.hpp
/// \brief In-process cluster network simulation.
///
/// This is the substitution for the paper's Grid'5000 testbed (see
/// DESIGN.md §2). Every cluster process (client, data provider, metadata
/// provider, version manager, provider manager) registers as a node. A
/// remote procedure call from node A to node B costs:
///
///   one-way latency + req_bytes through A's TX NIC + req_bytes through
///   B's RX NIC + [handler runs] + resp_bytes through B's TX NIC +
///   resp_bytes through A's RX NIC + one-way latency
///
/// NICs are serialized-link BandwidthGates, so N concurrent clients
/// fetching chunks from one provider share that provider's TX bandwidth —
/// the effect that makes data striping matter in the paper's experiments.
/// All waiting is sleeping, never spinning, so hundreds of simulated nodes
/// coexist on one physical core.
///
/// Fault injection: nodes can be killed/recovered, pairs of nodes can be
/// partitioned, and a node can be degraded (bandwidth penalty + extra
/// latency) to model the flaky machines of the paper's QoS study
/// (Section IV-E).

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/bandwidth_gate.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace blobseer::net {

/// Static parameters of the simulated interconnect.
struct NetworkConfig {
    /// One-way message latency (applied once per direction per RPC).
    Duration latency = microseconds(100);
    /// Per-node NIC capacity in bytes/second; 0 = infinite (no cost).
    std::uint64_t node_bandwidth_bps = 0;
};

/// Per-node runtime state.
struct NodeState {
    explicit NodeState(std::string name_, std::uint64_t bw)
        : name(std::move(name_)), tx(bw), rx(bw) {}

    std::string name;
    BandwidthGate tx;
    BandwidthGate rx;
    std::atomic<bool> alive{true};
    /// Multiplier applied to transfer durations (1000 = 1.0x). Stored as
    /// fixed-point so it can be atomic.
    std::atomic<std::uint32_t> penalty_milli{1000};
    /// Additional latency injected on calls touching this node.
    std::atomic<std::int64_t> extra_latency_ns{0};
    Counter msgs_in;
    Counter msgs_out;
    Counter bytes_in;
    Counter bytes_out;
};

class SimNetwork {
  public:
    explicit SimNetwork(NetworkConfig config = {}) : config_(config) {}

    SimNetwork(const SimNetwork&) = delete;
    SimNetwork& operator=(const SimNetwork&) = delete;

    /// Register a node; returns its id. Thread-safe.
    NodeId add_node(std::string name) {
        const std::scoped_lock lock(mu_);
        nodes_.push_back(std::make_unique<NodeState>(
            std::move(name), config_.node_bandwidth_bps));
        return static_cast<NodeId>(nodes_.size() - 1);
    }

    [[nodiscard]] std::size_t node_count() const {
        const std::scoped_lock lock(mu_);
        return nodes_.size();
    }

    [[nodiscard]] const NodeState& node(NodeId id) const {
        return *node_ptr(id);
    }

    // ---- fault injection ------------------------------------------------

    /// Kill a node: every RPC to or from it fails (after the latency it
    /// takes the caller to notice).
    void kill(NodeId id) { node_ptr(id)->alive.store(false); }

    /// Bring a killed node back (its stored state is whatever the service
    /// object still holds — BlobSeer providers are expected to lose RAM
    /// contents only if the service chooses to clear them).
    void recover(NodeId id) { node_ptr(id)->alive.store(true); }

    [[nodiscard]] bool is_alive(NodeId id) const {
        return node_ptr(id)->alive.load();
    }

    /// Block all traffic between \p a and \p b (both directions).
    void partition(NodeId a, NodeId b) {
        const std::scoped_lock lock(mu_);
        partitions_.insert(ordered(a, b));
    }

    void heal_partition(NodeId a, NodeId b) {
        const std::scoped_lock lock(mu_);
        partitions_.erase(ordered(a, b));
    }

    /// Degrade a node: transfers touching it take \p factor times longer
    /// and calls gain \p extra latency. factor >= 1.0.
    void degrade(NodeId id, double factor, Duration extra = {}) {
        auto* n = node_ptr(id);
        n->penalty_milli.store(static_cast<std::uint32_t>(factor * 1000.0));
        n->extra_latency_ns.store(
            duration_cast<nanoseconds>(extra).count());
    }

    void restore(NodeId id) { degrade(id, 1.0, {}); }

    // ---- RPC ------------------------------------------------------------

    /// Execute \p handler as an RPC from \p src to \p dst, charging
    /// \p req_bytes on the request path and \p resp_bytes on the response
    /// path. Throws RpcError if either endpoint is dead or partitioned.
    ///
    /// The handler runs on the calling thread (services are thread-safe
    /// objects); what this wrapper adds is the time cost and the failure
    /// surface of a real network.
    template <typename F>
    auto call(NodeId src, NodeId dst, std::uint64_t req_bytes,
              std::uint64_t resp_bytes, F&& handler)
        -> std::invoke_result_t<F> {
        NodeState* s = node_ptr(src);
        NodeState* d = node_ptr(dst);

        check_reachable(src, dst, *s, *d);

        // Request path.
        sleep_latency(*s, *d);
        s->tx.transmit(scaled(req_bytes, *s));
        d->rx.transmit(scaled(req_bytes, *d));
        s->msgs_out.add();
        s->bytes_out.add(req_bytes);
        d->msgs_in.add();
        d->bytes_in.add(req_bytes);

        // The destination may have died while the request was in flight.
        check_reachable(src, dst, *s, *d);

        if constexpr (std::is_void_v<std::invoke_result_t<F>>) {
            handler();
            respond(src, dst, *s, *d, resp_bytes);
        } else {
            auto result = handler();
            respond(src, dst, *s, *d, resp_bytes);
            return result;
        }
    }

    /// Frame-sized RPC: like call(), but the response cost is the *actual*
    /// size of the handler's returned byte buffer instead of a caller-side
    /// estimate. This is the entry point the RPC subsystem uses — request
    /// and response are encoded frames, so both directions charge exactly
    /// the bytes a real wire would carry (see rpc::SimTransport).
    template <typename F>
    auto call_sized(NodeId src, NodeId dst, std::uint64_t req_bytes,
                    F&& handler) -> std::invoke_result_t<F> {
        NodeState* s = node_ptr(src);
        NodeState* d = node_ptr(dst);

        check_reachable(src, dst, *s, *d);

        sleep_latency(*s, *d);
        s->tx.transmit(scaled(req_bytes, *s));
        d->rx.transmit(scaled(req_bytes, *d));
        s->msgs_out.add();
        s->bytes_out.add(req_bytes);
        d->msgs_in.add();
        d->bytes_in.add(req_bytes);

        check_reachable(src, dst, *s, *d);

        auto result = handler();
        respond(src, dst, *s, *d, result.size());
        return result;
    }

    /// One-way message (no response path) — used for heartbeats.
    template <typename F>
    void send(NodeId src, NodeId dst, std::uint64_t bytes, F&& handler) {
        NodeState* s = node_ptr(src);
        NodeState* d = node_ptr(dst);
        check_reachable(src, dst, *s, *d);
        sleep_latency(*s, *d);
        s->tx.transmit(scaled(bytes, *s));
        d->rx.transmit(scaled(bytes, *d));
        s->msgs_out.add();
        d->msgs_in.add();
        check_reachable(src, dst, *s, *d);
        handler();
    }

    [[nodiscard]] const NetworkConfig& config() const noexcept {
        return config_;
    }

    /// Total messages delivered network-wide (request legs only).
    [[nodiscard]] std::uint64_t total_messages() const {
        const std::scoped_lock lock(mu_);
        std::uint64_t n = 0;
        for (const auto& node : nodes_) {
            n += node->msgs_out.get();
        }
        return n;
    }

  private:
    static std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
        return a < b ? std::pair{a, b} : std::pair{b, a};
    }

    NodeState* node_ptr(NodeId id) const {
        const std::scoped_lock lock(mu_);
        if (id >= nodes_.size()) {
            throw InvalidArgument("unknown node id " + std::to_string(id));
        }
        return nodes_[id].get();
    }

    void check_reachable(NodeId src, NodeId dst, const NodeState& s,
                         const NodeState& d) const {
        if (!s.alive.load()) {
            throw RpcError("source node " + s.name + " is down");
        }
        if (!d.alive.load()) {
            throw RpcError("target node " + d.name + " is down");
        }
        const std::scoped_lock lock(mu_);
        if (partitions_.contains(ordered(src, dst))) {
            throw RpcError("partition between " + s.name + " and " + d.name);
        }
    }

    void sleep_latency(const NodeState& s, const NodeState& d) const {
        auto lat = config_.latency;
        lat += nanoseconds(s.extra_latency_ns.load());
        lat += nanoseconds(d.extra_latency_ns.load());
        if (lat > Duration::zero()) {
            std::this_thread::sleep_for(lat);
        }
    }

    /// Apply the degradation penalty by inflating the byte count charged
    /// to the gates (equivalent to slowing the link by the same factor).
    static std::uint64_t scaled(std::uint64_t bytes, const NodeState& n) {
        const std::uint64_t p = n.penalty_milli.load();
        return p == 1000 ? bytes : bytes * p / 1000;
    }

    void respond(NodeId src, NodeId dst, NodeState& s, NodeState& d,
                 std::uint64_t resp_bytes) {
        check_reachable(src, dst, s, d);
        d.tx.transmit(scaled(resp_bytes, d));
        s.rx.transmit(scaled(resp_bytes, s));
        d.msgs_out.add();
        d.bytes_out.add(resp_bytes);
        s.msgs_in.add();
        s.bytes_in.add(resp_bytes);
        sleep_latency(s, d);
    }

    const NetworkConfig config_;
    mutable std::mutex mu_;  // guards nodes_ vector layout and partitions_
    std::vector<std::unique_ptr<NodeState>> nodes_;
    std::set<std::pair<NodeId, NodeId>> partitions_;
};

}  // namespace blobseer::net
