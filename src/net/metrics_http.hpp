/// \file metrics_http.hpp
/// \brief Minimal HTTP/1.0 responder serving the Prometheus scrape
///        endpoint (DESIGN.md §13).
///
/// One accept thread, one short-lived handler thread per request:
/// `GET /metrics` answers with render_prometheus() over the process
/// registry, anything else gets 404, and the connection closes after
/// the response (Connection: close — a scraper opens a fresh connection
/// per scrape, which is exactly Prometheus's default behaviour). This
/// is deliberately not a web server: no keep-alive, no chunked
/// encoding, no TLS; it exists so `curl http://daemon:port/metrics`
/// and a stock Prometheus scrape config work against any daemon
/// started with --metrics-port.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace blobseer::net {

class MetricsHttpServer {
  public:
    /// Bind \p bind_addr:\p port (port 0 = ephemeral; read the chosen
    /// one back with port()) and start answering scrapes.
    explicit MetricsHttpServer(std::uint16_t port = 0,
                               const std::string& bind_addr = "0.0.0.0");
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer&) = delete;
    MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    /// Shut down the listener and join the accept thread. Idempotent.
    /// In-flight handler threads finish their single response on their
    /// own (they hold no reference to this object).
    void stop();

  private:
    void accept_loop();

    /// Answer one request on \p fd and close it (static: runs on a
    /// detached thread that may outlive the server object).
    static void answer(int fd);

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread accept_thread_;
    std::mutex mu_;  // guards stopping_
    bool stopping_ = false;
};

}  // namespace blobseer::net
