/// \file event_loop.hpp
/// \brief Epoll event loop and fixed-size reactor thread group.
///
/// One EventLoop owns one epoll instance and one thread. File descriptors
/// are registered with a readiness callback; all registration mutation and
/// all callbacks run on the loop thread, so handlers need no locking
/// against each other. Cross-thread work enters through post(), which
/// enqueues a task and wakes the loop via an eventfd. A Reactor is N loops
/// with round-robin assignment — the fixed thread count that replaces
/// thread-per-connection serving (DESIGN.md §15).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace blobseer::net {

class EventLoop {
  public:
    /// Readiness callback: receives the epoll event mask for the fd.
    using FdHandler = std::function<void(std::uint32_t events)>;
    using Task = std::function<void()>;

    EventLoop();
    ~EventLoop();

    EventLoop(const EventLoop&) = delete;
    EventLoop& operator=(const EventLoop&) = delete;

    /// Spawn the loop thread. Call once.
    void start();

    /// Ask the loop to exit and join its thread. Idempotent; safe from
    /// any thread except the loop thread itself. Registered handlers are
    /// destroyed after the join (dropping any captured shared state).
    void stop();

    /// Run \p fn on the loop thread. Always enqueues (even when called
    /// from the loop thread — keeps re-entrancy out of handlers). After
    /// stop() the task is silently discarded.
    void post(Task fn);

    /// Register \p fd with \p events (EPOLLIN etc.; level-triggered
    /// unless the caller ors in EPOLLET). Loop thread only.
    void add_fd(int fd, std::uint32_t events, FdHandler handler);

    /// Change the event mask of a registered fd. Loop thread only.
    void mod_fd(int fd, std::uint32_t events);

    /// Unregister \p fd and drop its handler. Loop thread only. The fd is
    /// NOT closed — ownership stays with the caller.
    void del_fd(int fd);

    /// Install a periodic tick that fires on the loop thread roughly
    /// every \p period. One tick per loop; call before start().
    void set_tick(std::chrono::milliseconds period, Task fn);

    [[nodiscard]] bool on_loop_thread() const noexcept {
        return std::this_thread::get_id() == thread_id_.load();
    }

    [[nodiscard]] std::size_t fd_count() const noexcept {
        return fd_count_.load(std::memory_order_relaxed);
    }

  private:
    void run();
    void drain_tasks();
    void wake();

    int epoll_fd_ = -1;
    int wake_fd_ = -1;
    std::thread thread_;
    std::atomic<std::thread::id> thread_id_{};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> started_{false};
    std::atomic<std::size_t> fd_count_{0};

    std::mutex task_mu_;  // leaf lock: guards tasks_ only
    std::deque<Task> tasks_;

    // Loop-thread-only state.
    std::unordered_map<int, FdHandler> handlers_;
    /// Handlers removed by del_fd mid-wave; destroyed only once no
    /// handler is executing (a handler may del_fd itself).
    std::vector<FdHandler> zombies_;

    std::chrono::milliseconds tick_period_{0};
    Task tick_fn_;
};

/// Fixed group of event loops with round-robin connection assignment.
class Reactor {
  public:
    /// \p n loops (clamped to >= 1), all started immediately. When given,
    /// \p pre_start runs for each loop before its thread spawns — the
    /// only window where set_tick() may be called.
    explicit Reactor(
        std::size_t n,
        const std::function<void(EventLoop&, std::size_t)>& pre_start = {});
    ~Reactor();

    Reactor(const Reactor&) = delete;
    Reactor& operator=(const Reactor&) = delete;

    /// Next loop in round-robin order.
    [[nodiscard]] EventLoop& next();

    [[nodiscard]] EventLoop& loop(std::size_t i) { return *loops_[i]; }
    [[nodiscard]] std::size_t size() const noexcept { return loops_.size(); }

    /// Stop and join every loop. Idempotent.
    void stop();

  private:
    std::vector<std::unique_ptr<EventLoop>> loops_;
    std::atomic<std::size_t> rr_{0};
};

}  // namespace blobseer::net
