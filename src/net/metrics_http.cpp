#include "net/metrics_http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace blobseer::net {

namespace {

[[nodiscard]] std::string errno_string() {
    return std::string(std::strerror(errno));
}

/// Write all of \p data, swallowing errors — the client hanging up
/// mid-response is its problem, not the daemon's.
void send_all(int fd, const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            return;
        }
        sent += static_cast<std::size_t>(n);
    }
}

[[nodiscard]] std::string http_response(const std::string& status,
                                        const std::string& content_type,
                                        const std::string& body) {
    std::string out;
    out.reserve(body.size() + 128);
    out += "HTTP/1.0 " + status + "\r\n";
    out += "Content-Type: " + content_type + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += body;
    return out;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(std::uint16_t port,
                                     const std::string& bind_addr) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        throw RpcError("metrics socket: " + errno_string());
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        throw RpcError("metrics bind: bad address " + bind_addr);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
        const std::string err = errno_string();
        ::close(listen_fd_);
        throw RpcError("metrics bind " + bind_addr + ":" +
                       std::to_string(port) + ": " + err);
    }
    if (::listen(listen_fd_, 16) != 0) {
        const std::string err = errno_string();
        ::close(listen_fd_);
        throw RpcError("metrics listen: " + err);
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    accept_thread_ = std::thread([this] { accept_loop(); });
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::stop() {
    {
        const std::scoped_lock lock(mu_);
        if (stopping_) {
            return;
        }
        stopping_ = true;
        ::shutdown(listen_fd_, SHUT_RDWR);
    }
    if (accept_thread_.joinable()) {
        accept_thread_.join();
    }
    ::close(listen_fd_);
}

void MetricsHttpServer::accept_loop() {
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            const std::scoped_lock lock(mu_);
            if (stopping_) {
                return;
            }
            continue;  // transient accept error (EINTR, EMFILE...)
        }
        // Detached: one request, one response, close. The handler never
        // touches the server object, so shutdown need not wait for it.
        std::thread([fd] { answer(fd); }).detach();
    }
}

void MetricsHttpServer::answer(int fd) {
    // Read whatever fits in one buffer; the request line is all that
    // matters and any real scraper sends it in the first packet.
    char buf[2048];
    const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
    if (n <= 0) {
        ::close(fd);
        return;
    }
    buf[n] = '\0';
    const std::string_view request(buf, static_cast<std::size_t>(n));

    if (request.starts_with("GET /metrics ") ||
        request.starts_with("GET /metrics\r") ||
        request.starts_with("GET /metrics HTTP")) {
        const std::string body =
            render_prometheus(MetricsRegistry::instance().snapshot());
        send_all(fd, http_response("200 OK",
                                   "text/plain; version=0.0.4; "
                                   "charset=utf-8",
                                   body));
    } else {
        send_all(fd, http_response("404 Not Found", "text/plain",
                                   "only /metrics is served here\n"));
    }
    ::close(fd);
}

}  // namespace blobseer::net
