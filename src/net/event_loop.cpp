#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace blobseer::net {

EventLoop::EventLoop() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
        throw Error(std::string("epoll_create1: ") + std::strerror(errno));
    }
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) {
        const int err = errno;
        ::close(epoll_fd_);
        throw Error(std::string("eventfd: ") + std::strerror(err));
    }
    struct epoll_event ev {};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
        const int err = errno;
        ::close(wake_fd_);
        ::close(epoll_fd_);
        throw Error(std::string("epoll_ctl(wakefd): ") + std::strerror(err));
    }
}

EventLoop::~EventLoop() {
    stop();
    // Handlers captured shared state (connections); drop it before the
    // fds they own close in their destructors.
    handlers_.clear();
    if (wake_fd_ >= 0) {
        ::close(wake_fd_);
    }
    if (epoll_fd_ >= 0) {
        ::close(epoll_fd_);
    }
}

void EventLoop::start() {
    if (started_.exchange(true)) {
        return;
    }
    thread_ = std::thread([this] {
        thread_id_.store(std::this_thread::get_id());
        run();
    });
}

void EventLoop::stop() {
    if (!started_.load()) {
        stopping_.store(true);
        return;
    }
    if (!stopping_.exchange(true)) {
        wake();
    }
    if (thread_.joinable()) {
        thread_.join();
    }
}

void EventLoop::post(Task fn) {
    {
        const std::scoped_lock lock(task_mu_);
        if (stopping_.load()) {
            return;  // discarded: the loop will never run again
        }
        tasks_.push_back(std::move(fn));
    }
    wake();
}

void EventLoop::wake() {
    const std::uint64_t one = 1;
    // Nonblocking eventfd: EAGAIN means the counter is already nonzero
    // and the loop will wake anyway.
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdHandler handler) {
    struct epoll_event ev {};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        throw Error(std::string("epoll_ctl(add): ") + std::strerror(errno));
    }
    handlers_[fd] = std::move(handler);
    fd_count_.fetch_add(1, std::memory_order_relaxed);
}

void EventLoop::mod_fd(int fd, std::uint32_t events) {
    struct epoll_event ev {};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
        throw Error(std::string("epoll_ctl(mod): ") + std::strerror(errno));
    }
}

void EventLoop::del_fd(int fd) {
    const auto it = handlers_.find(fd);
    if (it == handlers_.end()) {
        return;
    }
    // Defer the handler's destruction: del_fd is routinely called from
    // inside the very handler being removed (a connection tearing itself
    // down), and destroying a std::function mid-invocation frees the
    // running closure's captured state under its feet.
    zombies_.push_back(std::move(it->second));
    handlers_.erase(it);
    fd_count_.fetch_sub(1, std::memory_order_relaxed);
    // The fd may already be closed by the owner in rare teardown orders;
    // a failed DEL is harmless then.
    struct epoll_event ev {};
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
}

void EventLoop::set_tick(std::chrono::milliseconds period, Task fn) {
    tick_period_ = period;
    tick_fn_ = std::move(fn);
}

void EventLoop::drain_tasks() {
    std::deque<Task> batch;
    {
        const std::scoped_lock lock(task_mu_);
        batch.swap(tasks_);
    }
    for (auto& t : batch) {
        t();
    }
}

void EventLoop::run() {
    constexpr int kMaxEvents = 64;
    struct epoll_event events[kMaxEvents];
    auto next_tick = std::chrono::steady_clock::now() + tick_period_;
    while (!stopping_.load()) {
        int timeout_ms = -1;
        if (tick_fn_) {
            const auto now = std::chrono::steady_clock::now();
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    next_tick - now)
                    .count();
            timeout_ms = left < 0 ? 0 : static_cast<int>(left);
        }
        const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            break;  // epoll fd itself broken; nothing recoverable
        }
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == wake_fd_) {
                std::uint64_t drained = 0;
                while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
                }
                continue;
            }
            // Look the handler up per event: an earlier handler in this
            // wave may have del_fd'd this fd.
            const auto it = handlers_.find(fd);
            if (it != handlers_.end()) {
                it->second(events[i].events);
            }
        }
        // Now that no handler is on the stack, retired ones can die.
        zombies_.clear();
        drain_tasks();
        zombies_.clear();  // del_fd from a task is safe to settle too
        if (tick_fn_ &&
            std::chrono::steady_clock::now() >= next_tick) {
            tick_fn_();
            // A tick may del_fd too (idle sweeps); settle immediately
            // rather than holding the retired handlers' captures until
            // the next wakeup.
            zombies_.clear();
            next_tick = std::chrono::steady_clock::now() + tick_period_;
        }
    }
    // Final drain so a post() that won the race against stop() is not
    // silently lost (its effects may release resources).
    drain_tasks();
    zombies_.clear();
}

Reactor::Reactor(std::size_t n,
                 const std::function<void(EventLoop&, std::size_t)>& pre_start) {
    if (n == 0) {
        n = 1;
    }
    loops_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        loops_.push_back(std::make_unique<EventLoop>());
    }
    for (std::size_t i = 0; i < loops_.size(); ++i) {
        if (pre_start) {
            pre_start(*loops_[i], i);
        }
        loops_[i]->start();
    }
}

Reactor::~Reactor() { stop(); }

EventLoop& Reactor::next() {
    return *loops_[rr_.fetch_add(1, std::memory_order_relaxed) %
                   loops_.size()];
}

void Reactor::stop() {
    for (auto& l : loops_) {
        l->stop();
    }
}

}  // namespace blobseer::net
