/// \file codec.hpp
/// \brief Block-compression codec interface and the one-byte frame tag.
///
/// A Codec turns a byte block into a (hopefully) smaller byte block and
/// back. Consumers never store bare codec output: they store a *frame*,
/// which prefixes a one-byte tag so incompressible data rides through
/// untouched and a reader can always tell what it is looking at:
///
///   [0x00 | raw bytes]                      kFrameRaw: passthrough
///   [0x01 | raw_size u32 LE | codec block]  kFrameLz4: compressed
///
/// encode_frame() compresses and keeps the result only if the whole frame
/// is strictly smaller than a raw frame would be, so framing never
/// inflates a value by more than the single tag byte. decode_frame()
/// throws Error on any malformed input (unknown tag, truncated header,
/// block that does not decode to exactly raw_size bytes) — callers that
/// treat a frame as untrusted disk bytes (the engine, the file cache)
/// turn that into their own corruption handling.
///
/// Like the vendored SHA-256 (src/cas/sha256.hpp), codecs here are
/// dependency-free reimplementations pinned against format test vectors.

#pragma once

#include <cstdint>
#include <string>

#include "common/buffer.hpp"
#include "common/error.hpp"

namespace blobseer::codec {

/// Frame tag byte: the first byte of every framed value.
inline constexpr std::uint8_t kFrameRaw = 0x00;
inline constexpr std::uint8_t kFrameLz4 = 0x01;

/// Size of the compressed-frame prefix: tag + raw_size u32.
inline constexpr std::size_t kCompressedFrameHeader = 5;

class Codec {
  public:
    virtual ~Codec() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Compress \p raw into a self-contained block. Always succeeds (the
    /// output may be larger than the input for incompressible data —
    /// encode_frame() handles that case).
    [[nodiscard]] virtual Buffer compress(ConstBytes raw) const = 0;

    /// Decompress a block produced by compress() into exactly
    /// \p raw_size bytes. Throws Error on malformed input; never reads
    /// or writes out of bounds regardless of how corrupt the block is.
    [[nodiscard]] virtual Buffer decompress(ConstBytes block,
                                            std::size_t raw_size) const = 0;
};

/// Frame \p raw with \p codec: compressed frame if that is strictly
/// smaller than tag+raw, raw passthrough frame otherwise.
[[nodiscard]] inline Buffer encode_frame(const Codec& codec, ConstBytes raw) {
    if (raw.size() >= kCompressedFrameHeader) {
        Buffer block = codec.compress(raw);
        if (kCompressedFrameHeader + block.size() < 1 + raw.size()) {
            Buffer out;
            out.reserve(kCompressedFrameHeader + block.size());
            out.push_back(kFrameLz4);
            const auto n = static_cast<std::uint32_t>(raw.size());
            for (int i = 0; i < 4; ++i) {
                out.push_back(static_cast<std::uint8_t>(n >> (i * 8)));
            }
            out.insert(out.end(), block.begin(), block.end());
            return out;
        }
    }
    Buffer out;
    out.reserve(1 + raw.size());
    out.push_back(kFrameRaw);
    out.insert(out.end(), raw.begin(), raw.end());
    return out;
}

/// Inverse of encode_frame(). Throws Error on malformed frames.
[[nodiscard]] inline Buffer decode_frame(const Codec& codec,
                                         ConstBytes frame) {
    if (frame.empty()) {
        throw Error("codec: empty frame");
    }
    if (frame[0] == kFrameRaw) {
        return Buffer(frame.begin() + 1, frame.end());
    }
    if (frame[0] != kFrameLz4) {
        throw Error("codec: unknown frame tag " + std::to_string(frame[0]));
    }
    if (frame.size() < kCompressedFrameHeader) {
        throw Error("codec: truncated compressed frame header");
    }
    std::uint32_t raw_size = 0;
    for (int i = 0; i < 4; ++i) {
        raw_size |= static_cast<std::uint32_t>(
                        frame[1 + static_cast<std::size_t>(i)])
                    << (i * 8);
    }
    return codec.decompress(frame.subspan(kCompressedFrameHeader), raw_size);
}

/// Raw (pre-compression) size a frame will decode to, without decoding.
/// Throws Error on malformed frames.
[[nodiscard]] inline std::size_t frame_raw_size(ConstBytes frame) {
    if (frame.empty()) {
        throw Error("codec: empty frame");
    }
    if (frame[0] == kFrameRaw) {
        return frame.size() - 1;
    }
    if (frame[0] != kFrameLz4 || frame.size() < kCompressedFrameHeader) {
        throw Error("codec: malformed frame");
    }
    std::uint32_t raw_size = 0;
    for (int i = 0; i < 4; ++i) {
        raw_size |= static_cast<std::uint32_t>(
                        frame[1 + static_cast<std::size_t>(i)])
                    << (i * 8);
    }
    return raw_size;
}

}  // namespace blobseer::codec
