/// \file lz4.hpp
/// \brief Vendored, dependency-free LZ4 block-format codec.
///
/// Implements the public LZ4 block format (github.com/lz4/lz4,
/// doc/lz4_Block_format.md): a block is a run of sequences, each
///
///   [token 1B | lit-len ext* | literals | offset u16 LE | match-len ext*]
///
/// where the token's high nibble is the literal length (15 = extended by
/// 255-run bytes) and the low nibble is match length minus 4 (likewise
/// extended). A match copies `match length` bytes from `offset` bytes
/// back in the output (1..65535; overlap allowed, which is how RLE runs
/// compress). End-of-block rules: the last sequence is literals-only,
/// the final 5 bytes of input are always literals, and no match may
/// start within the last 12 bytes.
///
/// The compressor is the classic single-probe greedy matcher (a small
/// position hash table, no chains) — deterministic, so its output can be
/// pinned in tests. The decompressor is strict and fully bounds-checked:
/// any malformed block throws Error and never touches memory outside the
/// input span or the output buffer (fuzzed under ASan in test_codec).

#pragma once

#include "codec/codec.hpp"

namespace blobseer::codec {

class Lz4Codec final : public Codec {
  public:
    [[nodiscard]] std::string name() const override { return "lz4"; }

    [[nodiscard]] Buffer compress(ConstBytes raw) const override;

    [[nodiscard]] Buffer decompress(ConstBytes block,
                                    std::size_t raw_size) const override;
};

}  // namespace blobseer::codec
