#include "codec/lz4.hpp"

#include <cstdint>
#include <vector>

namespace blobseer::codec {

namespace {

// Format constants from lz4_Block_format.md.
constexpr std::size_t kMinMatch = 4;       // shortest encodable match
constexpr std::size_t kMfLimit = 12;       // no match starts in last 12 B
constexpr std::size_t kLastLiterals = 5;   // final 5 B are always literals
constexpr std::size_t kMaxOffset = 65535;  // u16 back-reference

// Single-probe hash table: 2^14 entries keeps the per-call footprint at
// 64 KiB while still finding the matches that matter for chunk-sized
// (64 KiB..1 MiB) inputs.
constexpr unsigned kHashLog = 14;
constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFu;

[[nodiscard]] std::uint32_t read32(ConstBytes in, std::size_t pos) noexcept {
    return static_cast<std::uint32_t>(in[pos]) |
           (static_cast<std::uint32_t>(in[pos + 1]) << 8) |
           (static_cast<std::uint32_t>(in[pos + 2]) << 16) |
           (static_cast<std::uint32_t>(in[pos + 3]) << 24);
}

[[nodiscard]] std::uint32_t hash32(std::uint32_t v) noexcept {
    return (v * 2654435761u) >> (32 - kHashLog);
}

/// Append a length in the token-nibble + 255-run-extension encoding.
void put_length_ext(Buffer& out, std::size_t len) {
    std::size_t rem = len - 15;
    while (rem >= 255) {
        out.push_back(0xFF);
        rem -= 255;
    }
    out.push_back(static_cast<std::uint8_t>(rem));
}

/// Emit one sequence: literals [anchor, lit_end) and, if offset != 0, a
/// match of match_len bytes at offset back.
void emit_sequence(Buffer& out, ConstBytes raw, std::size_t anchor,
                   std::size_t lit_end, std::size_t offset,
                   std::size_t match_len) {
    const std::size_t lit_len = lit_end - anchor;
    std::uint8_t token = 0;
    token |= static_cast<std::uint8_t>((lit_len >= 15 ? 15 : lit_len) << 4);
    if (offset != 0) {
        const std::size_t m = match_len - kMinMatch;
        token |= static_cast<std::uint8_t>(m >= 15 ? 15 : m);
    }
    out.push_back(token);
    if (lit_len >= 15) {
        put_length_ext(out, lit_len);
    }
    out.insert(out.end(), raw.begin() + static_cast<std::ptrdiff_t>(anchor),
               raw.begin() + static_cast<std::ptrdiff_t>(lit_end));
    if (offset != 0) {
        out.push_back(static_cast<std::uint8_t>(offset & 0xFF));
        out.push_back(static_cast<std::uint8_t>(offset >> 8));
        if (match_len - kMinMatch >= 15) {
            put_length_ext(out, match_len - kMinMatch);
        }
    }
}

}  // namespace

Buffer Lz4Codec::compress(ConstBytes raw) const {
    Buffer out;
    const std::size_t n = raw.size();
    out.reserve(n + n / 255 + 16);
    if (n == 0) {
        out.push_back(0x00);  // empty block: zero literals, no match
        return out;
    }
    std::size_t anchor = 0;
    if (n > kMfLimit) {
        std::vector<std::uint32_t> table(std::size_t{1} << kHashLog,
                                         kEmptySlot);
        const std::size_t match_limit = n - kMfLimit;  // last legal start
        const std::size_t end_limit = n - kLastLiterals;
        std::size_t ip = 0;
        while (ip < match_limit) {
            const std::uint32_t h = hash32(read32(raw, ip));
            const std::uint32_t cand = table[h];
            table[h] = static_cast<std::uint32_t>(ip);
            if (cand != kEmptySlot && ip - cand <= kMaxOffset &&
                read32(raw, cand) == read32(raw, ip)) {
                std::size_t len = kMinMatch;
                while (ip + len < end_limit && raw[cand + len] == raw[ip + len]) {
                    ++len;
                }
                emit_sequence(out, raw, anchor, ip, ip - cand, len);
                ip += len;
                anchor = ip;
            } else {
                ++ip;
            }
        }
    }
    emit_sequence(out, raw, anchor, n, 0, 0);  // trailing literals
    return out;
}

Buffer Lz4Codec::decompress(ConstBytes block, std::size_t raw_size) const {
    // A sequence of k input bytes expands to fewer than 255*k output
    // bytes, so anything claiming more is malformed — reject before
    // allocating the output buffer.
    if (raw_size > 0 &&
        (block.empty() || raw_size / 255 > block.size())) {
        throw Error("lz4: claimed raw size impossible for block size");
    }
    Buffer out(raw_size);
    const std::size_t ie = block.size();
    std::size_t ip = 0;
    std::size_t op = 0;
    if (ie == 0) {
        if (raw_size != 0) {
            throw Error("lz4: empty block with nonzero raw size");
        }
        return out;
    }
    while (true) {
        if (ip >= ie) {
            throw Error("lz4: block ends mid-sequence");
        }
        const std::uint8_t token = block[ip++];
        std::size_t lit_len = token >> 4;
        if (lit_len == 15) {
            std::uint8_t b = 0;
            do {
                if (ip >= ie) {
                    throw Error("lz4: truncated literal-length extension");
                }
                b = block[ip++];
                lit_len += b;
            } while (b == 0xFF);
        }
        if (lit_len > ie - ip) {
            throw Error("lz4: literal run past end of block");
        }
        if (lit_len > raw_size - op) {
            throw Error("lz4: literal run past declared raw size");
        }
        for (std::size_t i = 0; i < lit_len; ++i) {
            out[op + i] = block[ip + i];
        }
        ip += lit_len;
        op += lit_len;
        if (ip == ie) {
            // Proper end of block: the last sequence is literals-only.
            if (op != raw_size) {
                throw Error("lz4: block decodes to wrong size");
            }
            return out;
        }
        if (ie - ip < 2) {
            throw Error("lz4: truncated match offset");
        }
        const std::size_t offset =
            static_cast<std::size_t>(block[ip]) |
            (static_cast<std::size_t>(block[ip + 1]) << 8);
        ip += 2;
        if (offset == 0) {
            throw Error("lz4: zero match offset");
        }
        if (offset > op) {
            throw Error("lz4: match offset before start of output");
        }
        std::size_t match_len = token & 0x0F;
        if (match_len == 15) {
            std::uint8_t b = 0;
            do {
                if (ip >= ie) {
                    throw Error("lz4: truncated match-length extension");
                }
                b = block[ip++];
                match_len += b;
            } while (b == 0xFF);
        }
        match_len += kMinMatch;
        if (match_len > raw_size - op) {
            throw Error("lz4: match past declared raw size");
        }
        // Byte-at-a-time so overlapping matches (offset < length) repeat
        // already-written output, which is what the format specifies.
        std::size_t src = op - offset;
        for (std::size_t i = 0; i < match_len; ++i) {
            out[op + i] = out[src + i];
        }
        op += match_len;
    }
}

}  // namespace blobseer::codec
