/// \file log_store.hpp
/// \brief Chunk store backed by the log-structured engine.
///
/// The file-per-chunk DiskStore costs an inode and a write+rename syscall
/// pair per chunk, and restarts pay an O(directory) rescan — untenable at
/// millions of 4 KiB–256 KiB chunks. LogStore appends chunks as
/// checksummed records to the shared engine (engine::LogEngine,
/// DESIGN.md §8): restart recovery is a checkpoint load, deletes are
/// tombstones, and dead space from erase() is reclaimed by the engine's
/// background compactor. Selectable as core::StoreBackend::kLog, or as
/// the durable tier under TwoTierStore (StoreBackend::kTwoTierLog).

#pragma once

#include <filesystem>
#include <string>
#include <utility>

#include "chunk/store.hpp"
#include "engine/log_engine.hpp"

namespace blobseer::chunk {

class LogStore final : public ChunkStore {
  public:
    /// Open with engine defaults rooted at \p dir.
    explicit LogStore(std::filesystem::path dir)
        : LogStore(make_config(std::move(dir))) {}

    /// Open with full engine control (tests, tuning).
    explicit LogStore(engine::EngineConfig cfg) : engine_(std::move(cfg)) {}

    void put(const ChunkKey& key, ChunkData data) override {
        // Immutable chunks: idempotent put, atomic with the existence
        // check so a concurrent duplicate never appends twice.
        (void)engine_.put_if_absent(encode_key(key), *data);
    }

    [[nodiscard]] std::optional<ChunkData> get(const ChunkKey& key) override {
        auto value = engine_.get(encode_key(key));
        if (!value) {
            return std::nullopt;
        }
        return std::make_shared<Buffer>(std::move(*value));
    }

    [[nodiscard]] bool contains(const ChunkKey& key) override {
        return engine_.contains(encode_key(key));
    }

    void erase(const ChunkKey& key) override {
        engine_.remove(encode_key(key));
    }

    [[nodiscard]] std::size_t count() override { return engine_.count(); }

    [[nodiscard]] std::uint64_t bytes() override {
        return engine_.live_value_bytes();
    }

    [[nodiscard]] engine::LogEngine& engine() noexcept { return engine_; }

    /// 16-byte little-endian (blob, uid) key.
    [[nodiscard]] static std::string encode_key(const ChunkKey& key) {
        Buffer out;
        out.reserve(16);
        engine::put_u64(out, key.blob);
        engine::put_u64(out, key.uid);
        return {out.begin(), out.end()};
    }

  private:
    [[nodiscard]] static engine::EngineConfig make_config(
        std::filesystem::path dir) {
        engine::EngineConfig cfg;
        cfg.dir = std::move(dir);
        return cfg;
    }

    engine::LogEngine engine_;
};

}  // namespace blobseer::chunk
