/// \file log_store.hpp
/// \brief Chunk store backed by the log-structured engine.
///
/// The file-per-chunk DiskStore costs an inode and a write+rename syscall
/// pair per chunk, and restarts pay an O(directory) rescan — untenable at
/// millions of 4 KiB–256 KiB chunks. LogStore appends chunks as
/// checksummed records to the shared engine (engine::LogEngine,
/// DESIGN.md §8): restart recovery is a checkpoint load, deletes are
/// tombstones, and dead space from erase() is reclaimed by the engine's
/// background compactor. Selectable as core::StoreBackend::kLog, or as
/// the durable tier under TwoTierStore (StoreBackend::kTwoTierLog).

#pragma once

#include <filesystem>
#include <mutex>
#include <string>
#include <utility>

#include "chunk/store.hpp"
#include "engine/log_engine.hpp"

namespace blobseer::chunk {

class LogStore final : public ChunkStore {
  public:
    /// Open with engine defaults rooted at \p dir.
    explicit LogStore(std::filesystem::path dir)
        : LogStore(make_config(std::move(dir))) {}

    /// Open with full engine control (tests, tuning).
    explicit LogStore(engine::EngineConfig cfg) : engine_(std::move(cfg)) {}

    void put(const ChunkKey& key, ChunkData data) override {
        // Immutable chunks: idempotent put, atomic with the existence
        // check so a concurrent duplicate never appends twice.
        (void)engine_.put_if_absent(encode_key(key), *data);
    }

    [[nodiscard]] std::optional<ChunkData> get(const ChunkKey& key) override {
        auto value = engine_.get(encode_key(key));
        if (!value) {
            return std::nullopt;
        }
        return std::make_shared<Buffer>(std::move(*value));
    }

    [[nodiscard]] std::optional<ChunkRef> get_ref(
        const ChunkKey& key) override {
        auto ref = engine_.get_ref(encode_key(key));
        if (!ref) {
            return std::nullopt;
        }
        return ChunkRef{ref->bytes, std::move(ref->keepalive)};
    }

    [[nodiscard]] bool contains(const ChunkKey& key) override {
        return engine_.contains(encode_key(key));
    }

    void erase(const ChunkKey& key) override {
        // The count record dies with the chunk (see ChunkStore): a
        // later put of this key must restart at the implicit count.
        const std::scoped_lock lock(ref_mu_);
        engine_.remove(ref_key(key));
        engine_.remove(encode_key(key));
    }

    [[nodiscard]] std::size_t count() override { return engine_.count(); }

    [[nodiscard]] std::uint64_t bytes() override {
        return engine_.live_value_bytes();
    }

    // Reference counts are persisted as ordinary engine records under an
    // 'R'-prefixed key, written only while the count exceeds the implicit
    // 1 — steady state carries no record, and the record's tombstone (or
    // the chunk's own, at count zero) is reclaimed by the engine's
    // background compactor. That makes GC state restart-durable: a kill
    // between decrefs resumes with the exact surviving counts.

    std::uint64_t incref(const ChunkKey& key) override {
        const std::scoped_lock lock(ref_mu_);
        if (!engine_.contains(encode_key(key))) {
            return 0;
        }
        const std::uint64_t c = load_ref(key) + 1;
        store_ref(key, c);
        return c;
    }

    std::uint64_t decref(const ChunkKey& key) override {
        const std::scoped_lock lock(ref_mu_);
        if (!engine_.contains(encode_key(key))) {
            engine_.remove(ref_key(key));
            return 0;
        }
        const std::uint64_t c = load_ref(key);
        if (c <= 1) {
            engine_.remove(ref_key(key));
            engine_.remove(encode_key(key));
            return 0;
        }
        if (c - 1 == 1) {
            engine_.remove(ref_key(key));
        } else {
            store_ref(key, c - 1);
        }
        return c - 1;
    }

    [[nodiscard]] std::uint64_t refcount(const ChunkKey& key) override {
        const std::scoped_lock lock(ref_mu_);
        if (!engine_.contains(encode_key(key))) {
            return 0;
        }
        return load_ref(key);
    }

    [[nodiscard]] engine::LogEngine& engine() noexcept { return engine_; }

    /// Engine key: 16-byte little-endian (blob, uid) for uid-addressed
    /// chunks, 'C' + 16 digest bytes for content-addressed ones. The two
    /// keyspaces differ in length, so a re-minted uid can never alias a
    /// CAS chunk (and vice versa) no matter what the words contain.
    [[nodiscard]] static std::string encode_key(const ChunkKey& key) {
        Buffer out;
        out.reserve(17);
        if (key.is_content()) {
            out.push_back('C');
        }
        engine::put_u64(out, key.blob);
        engine::put_u64(out, key.uid);
        return {out.begin(), out.end()};
    }

  private:
    [[nodiscard]] static engine::EngineConfig make_config(
        std::filesystem::path dir) {
        engine::EngineConfig cfg;
        cfg.dir = std::move(dir);
        return cfg;
    }

    [[nodiscard]] static std::string ref_key(const ChunkKey& key) {
        return 'R' + encode_key(key);
    }

    /// Count as persisted; absent record = the implicit 1.
    [[nodiscard]] std::uint64_t load_ref(const ChunkKey& key) {
        const auto v = engine_.get(ref_key(key));
        if (!v || v->size() != 8) {
            return 1;
        }
        std::uint64_t c = 0;
        for (int i = 7; i >= 0; --i) {
            c = (c << 8) | (*v)[static_cast<std::size_t>(i)];
        }
        return c;
    }

    void store_ref(const ChunkKey& key, std::uint64_t c) {
        Buffer v;
        engine::put_u64(v, c);
        engine_.put(ref_key(key), v);
    }

    std::mutex ref_mu_;  // serializes refcount read-modify-write
    engine::LogEngine engine_;
};

}  // namespace blobseer::chunk
