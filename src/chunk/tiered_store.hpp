/// \file tiered_store.hpp
/// \brief Generic storage tier stack: RAM LRU → compressed file cache →
///        durable backend.
///
/// Generalizes the paper's §IV-B two-tier scheme (RAM cache over
/// persistent storage) with an optional compressed middle tier
/// (DESIGN.md §14): values evicted from the RAM tier are *demoted* into
/// a CompressedFileCache instead of being forgotten, and a middle-tier
/// hit *promotes* the value back into RAM. Working sets well past the
/// RAM budget are then served at decompress-a-file-entry cost instead of
/// full engine-read cost, and the cliff at RAM exhaustion flattens.
///
/// Tier semantics:
///  * put: write-through to the backend (durability), refresh the RAM
///    entry (an overwrite must never leave stale bytes servable — the
///    middle tier is invalidated too), demote RAM victims.
///  * get: RAM hit, else file-cache hit (decompress + promote), else
///    backend (repopulate RAM).
///  * erase / last decref: drop from every tier.
/// The middle tier is disposable: corrupt/missing entries fall through
/// to the backend, and deleting its directory loses nothing.
///
/// Constructed without a file cache this is exactly the old TwoTierStore
/// (the name survives as an alias in two_tier_store.hpp).

#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/compressed_file_cache.hpp"
#include "chunk/store.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"

namespace blobseer::chunk {

class TieredStore final : public ChunkStore {
  public:
    /// Two-tier form: RAM over \p backend, no middle tier.
    /// \param backend   durable store (owned).
    /// \param ram_budget max bytes kept in the RAM tier; 0 = unlimited.
    TieredStore(std::unique_ptr<ChunkStore> backend, std::uint64_t ram_budget)
        : TieredStore(std::move(backend), ram_budget, nullptr) {}

    /// Three-tier form: RAM over \p file_cache over \p backend.
    TieredStore(std::unique_ptr<ChunkStore> backend, std::uint64_t ram_budget,
                std::unique_ptr<cache::CompressedFileCache> file_cache)
        : backend_(std::move(backend)),
          file_cache_(std::move(file_cache)),
          ram_budget_(ram_budget) {
        metrics_.counter("tier_ram_hits_total", {}, hits_);
        metrics_.counter("tier_ram_misses_total", {}, misses_);
        metrics_.counter("tier_ram_evictions_total", {}, evictions_);
        metrics_.counter("tier_demotions_total", {}, demotions_);
        metrics_.counter("tier_promotions_total", {}, promotions_);
        metrics_.callback("tier_ram_bytes", {},
                          [this] { return ram_bytes(); });
    }

    void put(const ChunkKey& key, ChunkData data) override {
        backend_->put(key, data);
        if (file_cache_) {
            // The middle tier may hold a demoted copy of the old bytes.
            file_cache_->erase(file_key(key));
        }
        cache_insert(key, std::move(data));
    }

    [[nodiscard]] std::optional<ChunkData> get(const ChunkKey& key) override {
        {
            const std::scoped_lock lock(mu_);
            const auto it = map_.find(key);
            if (it != map_.end()) {
                hits_.add();
                lru_.splice(lru_.begin(), lru_, it->second);
                return it->second->data;
            }
        }
        misses_.add();
        if (file_cache_) {
            if (auto raw = file_cache_->get(file_key(key))) {
                promotions_.add();
                ChunkData data =
                    std::make_shared<Buffer>(std::move(*raw));
                cache_insert(key, data);
                return data;
            }
        }
        auto from_disk = backend_->get(key);
        if (from_disk) {
            cache_insert(key, *from_disk);
        }
        return from_disk;
    }

    [[nodiscard]] bool contains(const ChunkKey& key) override {
        {
            const std::scoped_lock lock(mu_);
            if (map_.contains(key)) {
                return true;
            }
        }
        if (file_cache_ && file_cache_->contains(file_key(key))) {
            return true;
        }
        return backend_->contains(key);
    }

    void erase(const ChunkKey& key) override {
        drop_cached(key);
        backend_->erase(key);
    }

    [[nodiscard]] std::size_t count() override { return backend_->count(); }

    [[nodiscard]] std::uint64_t bytes() override { return backend_->bytes(); }

    // Refcounts live in the durable tier; the caching tiers only need to
    // drop their copies when the last reference goes so a reclaimed
    // chunk cannot be served from RAM or from the file cache.
    std::uint64_t incref(const ChunkKey& key) override {
        return backend_->incref(key);
    }

    std::uint64_t decref(const ChunkKey& key) override {
        const std::uint64_t remaining = backend_->decref(key);
        if (remaining == 0) {
            drop_cached(key);
        }
        return remaining;
    }

    [[nodiscard]] std::uint64_t refcount(const ChunkKey& key) override {
        return backend_->refcount(key);
    }

    /// Bytes currently held in the RAM tier.
    [[nodiscard]] std::uint64_t ram_bytes() {
        const std::scoped_lock lock(mu_);
        return ram_bytes_;
    }

    [[nodiscard]] std::uint64_t cache_hits() const { return hits_.get(); }
    [[nodiscard]] std::uint64_t cache_misses() const { return misses_.get(); }
    [[nodiscard]] std::uint64_t cache_evictions() const {
        return evictions_.get();
    }
    [[nodiscard]] std::uint64_t demotions() const { return demotions_.get(); }
    [[nodiscard]] std::uint64_t promotions() const {
        return promotions_.get();
    }

    /// The middle tier, if configured (tests and stats plumbing).
    [[nodiscard]] cache::CompressedFileCache* file_cache() {
        return file_cache_.get();
    }

    /// Drop every volatile tier (crash of the caching layer; durable
    /// data stays). The file cache goes too: its index is in-memory, so
    /// a real restart empties it regardless of what is on disk.
    void drop_cache() {
        {
            const std::scoped_lock lock(mu_);
            lru_.clear();
            map_.clear();
            ram_bytes_ = 0;
        }
        if (file_cache_) {
            file_cache_->clear();
        }
    }

  private:
    struct Entry {
        ChunkKey key;
        ChunkData data;
    };
    using LruList = std::list<Entry>;

    /// Stable byte encoding of a ChunkKey for the file-cache tier (the
    /// same kind-prefix scheme LogStore uses for its persistent keys).
    [[nodiscard]] static std::string file_key(const ChunkKey& key) {
        std::string out;
        out.reserve(17);
        if (key.is_content()) {
            out.push_back('C');
        }
        for (int i = 0; i < 8; ++i) {
            out.push_back(static_cast<char>(key.blob >> (i * 8)));
        }
        for (int i = 0; i < 8; ++i) {
            out.push_back(static_cast<char>(key.uid >> (i * 8)));
        }
        return out;
    }

    /// Insert or refresh the RAM entry, then demote any evicted victims
    /// into the file cache (outside the lock — demotion compresses and
    /// writes a file, and must not stall concurrent RAM hits).
    void cache_insert(const ChunkKey& key, ChunkData data) {
        std::vector<Entry> victims;
        {
            const std::scoped_lock lock(mu_);
            if (const auto it = map_.find(key); it != map_.end()) {
                // Refresh in place: an overwriting put must replace the
                // cached bytes and their accounting, not keep the stale
                // copy servable.
                ram_bytes_ -= it->second->data->size();
                ram_bytes_ += data->size();
                it->second->data = std::move(data);
                lru_.splice(lru_.begin(), lru_, it->second);
            } else {
                ram_bytes_ += data->size();
                lru_.push_front(Entry{key, std::move(data)});
                map_[key] = lru_.begin();
            }
            while (ram_budget_ != 0 && ram_bytes_ > ram_budget_ &&
                   !lru_.empty()) {
                Entry& victim = lru_.back();
                ram_bytes_ -= victim.data->size();
                map_.erase(victim.key);
                if (file_cache_) {
                    victims.push_back(std::move(victim));
                }
                lru_.pop_back();
                evictions_.add();
            }
        }
        for (const Entry& victim : victims) {
            file_cache_->put(file_key(victim.key), *victim.data);
            demotions_.add();
        }
    }

    /// Remove \p key from the volatile tiers (not the backend).
    void drop_cached(const ChunkKey& key) {
        {
            const std::scoped_lock lock(mu_);
            const auto it = map_.find(key);
            if (it != map_.end()) {
                ram_bytes_ -= it->second->data->size();
                lru_.erase(it->second);
                map_.erase(it);
            }
        }
        if (file_cache_) {
            file_cache_->erase(file_key(key));
        }
    }

    std::unique_ptr<ChunkStore> backend_;
    std::unique_ptr<cache::CompressedFileCache> file_cache_;
    const std::uint64_t ram_budget_;

    std::mutex mu_;  // guards lru_, map_, ram_bytes_
    LruList lru_;
    std::unordered_map<ChunkKey, LruList::iterator, ChunkKeyHash> map_;
    std::uint64_t ram_bytes_ = 0;

    Counter hits_;
    Counter misses_;
    Counter evictions_;
    Counter demotions_;
    Counter promotions_;

    MetricsGroup metrics_;  // declared last: unbinds before members die
};

}  // namespace blobseer::chunk
