/// \file two_tier_store.hpp
/// \brief RAM cache over a persistent backend.
///
/// Paper §IV-B: "We also introduced persistent data and metadata storage
/// while keeping our initial RAM-based storage scheme as an underlying
/// caching mechanism." Writes go through to the backend (durability) and
/// populate the RAM tier; reads hit RAM first and fall back to the
/// backend, re-populating RAM. The RAM tier evicts least-recently-used
/// chunks once a byte budget is exceeded — safe because the backend always
/// holds everything.

#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "chunk/store.hpp"
#include "common/stats.hpp"

namespace blobseer::chunk {

class TwoTierStore final : public ChunkStore {
  public:
    /// \param backend   durable store (owned).
    /// \param ram_budget max bytes kept in the RAM tier; 0 = unlimited.
    TwoTierStore(std::unique_ptr<ChunkStore> backend,
                 std::uint64_t ram_budget)
        : backend_(std::move(backend)), ram_budget_(ram_budget) {}

    void put(const ChunkKey& key, ChunkData data) override {
        backend_->put(key, data);
        cache_insert(key, std::move(data));
    }

    [[nodiscard]] std::optional<ChunkData> get(const ChunkKey& key) override {
        {
            const std::scoped_lock lock(mu_);
            const auto it = map_.find(key);
            if (it != map_.end()) {
                hits_.add();
                lru_.splice(lru_.begin(), lru_, it->second);
                return it->second->data;
            }
        }
        misses_.add();
        auto from_disk = backend_->get(key);
        if (from_disk) {
            cache_insert(key, *from_disk);
        }
        return from_disk;
    }

    [[nodiscard]] bool contains(const ChunkKey& key) override {
        {
            const std::scoped_lock lock(mu_);
            if (map_.contains(key)) {
                return true;
            }
        }
        return backend_->contains(key);
    }

    void erase(const ChunkKey& key) override {
        {
            const std::scoped_lock lock(mu_);
            const auto it = map_.find(key);
            if (it != map_.end()) {
                ram_bytes_ -= it->second->data->size();
                lru_.erase(it->second);
                map_.erase(it);
            }
        }
        backend_->erase(key);
    }

    [[nodiscard]] std::size_t count() override { return backend_->count(); }

    [[nodiscard]] std::uint64_t bytes() override { return backend_->bytes(); }

    // Refcounts live in the durable tier; the cache only needs to drop
    // its copy when the last reference goes so a reclaimed chunk cannot
    // be served from RAM.
    std::uint64_t incref(const ChunkKey& key) override {
        return backend_->incref(key);
    }

    std::uint64_t decref(const ChunkKey& key) override {
        const std::uint64_t remaining = backend_->decref(key);
        if (remaining == 0) {
            const std::scoped_lock lock(mu_);
            const auto it = map_.find(key);
            if (it != map_.end()) {
                ram_bytes_ -= it->second->data->size();
                lru_.erase(it->second);
                map_.erase(it);
            }
        }
        return remaining;
    }

    [[nodiscard]] std::uint64_t refcount(const ChunkKey& key) override {
        return backend_->refcount(key);
    }

    /// Bytes currently held in the RAM tier.
    [[nodiscard]] std::uint64_t ram_bytes() {
        const std::scoped_lock lock(mu_);
        return ram_bytes_;
    }

    [[nodiscard]] std::uint64_t cache_hits() const { return hits_.get(); }
    [[nodiscard]] std::uint64_t cache_misses() const { return misses_.get(); }
    [[nodiscard]] std::uint64_t cache_evictions() const {
        return evictions_.get();
    }

    /// Drop the RAM tier (crash of the caching layer; durable data stays).
    void drop_cache() {
        const std::scoped_lock lock(mu_);
        lru_.clear();
        map_.clear();
        ram_bytes_ = 0;
    }

  private:
    struct Entry {
        ChunkKey key;
        ChunkData data;
    };
    using LruList = std::list<Entry>;

    void cache_insert(const ChunkKey& key, ChunkData data) {
        const std::scoped_lock lock(mu_);
        if (map_.contains(key)) {
            return;
        }
        ram_bytes_ += data->size();
        lru_.push_front(Entry{key, std::move(data)});
        map_[key] = lru_.begin();
        while (ram_budget_ != 0 && ram_bytes_ > ram_budget_ &&
               !lru_.empty()) {
            const Entry& victim = lru_.back();
            ram_bytes_ -= victim.data->size();
            map_.erase(victim.key);
            lru_.pop_back();
            evictions_.add();
        }
    }

    std::unique_ptr<ChunkStore> backend_;
    const std::uint64_t ram_budget_;

    std::mutex mu_;  // guards lru_, map_, ram_bytes_
    LruList lru_;
    std::unordered_map<ChunkKey, LruList::iterator, ChunkKeyHash> map_;
    std::uint64_t ram_bytes_ = 0;

    Counter hits_;
    Counter misses_;
    Counter evictions_;
};

}  // namespace blobseer::chunk
