/// \file two_tier_store.hpp
/// \brief Historical name of the RAM-over-durable cache store.
///
/// Paper §IV-B: "We also introduced persistent data and metadata storage
/// while keeping our initial RAM-based storage scheme as an underlying
/// caching mechanism." The implementation grew an optional compressed
/// file-cache middle tier and now lives in tiered_store.hpp as
/// TieredStore; constructed with the original (backend, ram_budget)
/// signature it behaves exactly as the old two-tier store did, so the
/// name survives as an alias.

#pragma once

#include "chunk/tiered_store.hpp"

namespace blobseer::chunk {

using TwoTierStore = TieredStore;

}  // namespace blobseer::chunk
