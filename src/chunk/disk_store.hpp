/// \file disk_store.hpp
/// \brief File-per-chunk persistent store.
///
/// Section IV-B of the paper introduces "persistent data and metadata
/// storage". This backend writes each chunk to its own file named after the
/// key (write-then-rename so a crash never leaves a truncated chunk
/// visible) and keeps an index of known keys in memory for O(1) contains().
/// On construction it rescans its directory, which is the provider-restart
/// recovery path.

#pragma once

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <unordered_map>

#include "chunk/store.hpp"
#include "common/error.hpp"

namespace blobseer::chunk {

class DiskStore final : public ChunkStore {
  public:
    /// Open (and create if needed) the store rooted at \p dir, rescanning
    /// any chunks a previous incarnation left there.
    explicit DiskStore(std::filesystem::path dir) : dir_(std::move(dir)) {
        std::filesystem::create_directories(dir_);
        for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
            if (!entry.is_regular_file()) {
                continue;
            }
            const std::string name = entry.path().filename().string();
            if (name.find(".tmp") != std::string::npos) {
                // Orphan from a crash between write_file and rename:
                // never visible through the index, reclaim it.
                std::error_code ec;
                std::filesystem::remove(entry.path(), ec);
                continue;
            }
            ChunkKey key{};
            if (parse_name(name, key)) {
                const std::scoped_lock lock(mu_);
                index_[key] = entry.file_size();
                bytes_ += entry.file_size();
            }
        }
    }

    void put(const ChunkKey& key, ChunkData data) override {
        {
            const std::scoped_lock lock(mu_);
            if (index_.contains(key)) {
                return;  // immutable chunks: idempotent put
            }
        }
        const auto final_path = path_of(key);
        // Process-wide counter keeps concurrent writers' tmp names unique
        // (a stack address can be reused by another thread mid-put).
        const auto tmp_path =
            final_path.string() + ".tmp" +
            std::to_string(tmp_counter_.fetch_add(1));
        write_file(tmp_path, *data);
        std::filesystem::rename(tmp_path, final_path);
        const std::scoped_lock lock(mu_);
        auto [it, inserted] = index_.try_emplace(key, data->size());
        if (inserted) {
            bytes_ += data->size();
        }
    }

    [[nodiscard]] std::optional<ChunkData> get(const ChunkKey& key) override {
        {
            const std::scoped_lock lock(mu_);
            if (!index_.contains(key)) {
                return std::nullopt;
            }
        }
        return read_file(path_of(key));
    }

    [[nodiscard]] bool contains(const ChunkKey& key) override {
        const std::scoped_lock lock(mu_);
        return index_.contains(key);
    }

    void erase(const ChunkKey& key) override {
        drop_ref(key);
        {
            const std::scoped_lock lock(mu_);
            const auto it = index_.find(key);
            if (it == index_.end()) {
                return;
            }
            bytes_ -= it->second;
            index_.erase(it);
        }
        std::error_code ec;  // best effort; index is authoritative
        std::filesystem::remove(path_of(key), ec);
    }

    [[nodiscard]] std::size_t count() override {
        const std::scoped_lock lock(mu_);
        return index_.size();
    }

    [[nodiscard]] std::uint64_t bytes() override {
        const std::scoped_lock lock(mu_);
        return bytes_;
    }

    [[nodiscard]] const std::filesystem::path& directory() const noexcept {
        return dir_;
    }

  private:
    [[nodiscard]] std::filesystem::path path_of(const ChunkKey& key) const {
        if (key.is_content()) {
            // 'c' prefix keeps the content keyspace disjoint from the
            // uid files, which always start with a decimal digit.
            char buf[1 + 32 + 1];
            std::snprintf(buf, sizeof buf, "c%016llx%016llx",
                          static_cast<unsigned long long>(key.blob),
                          static_cast<unsigned long long>(key.uid));
            return dir_ / (std::string(buf) + ".chunk");
        }
        return dir_ / (std::to_string(key.blob) + "_" +
                       std::to_string(key.uid) + ".chunk");
    }

    static bool parse_name(const std::string& name, ChunkKey& out) {
        if (!name.ends_with(".chunk")) {
            return false;
        }
        const std::string stem = name.substr(0, name.size() - 6);
        if (stem.size() == 33 && stem[0] == 'c') {
            try {
                out.blob = std::stoull(stem.substr(1, 16), nullptr, 16);
                out.uid = std::stoull(stem.substr(17, 16), nullptr, 16);
            } catch (const std::exception&) {
                return false;
            }
            out.kind = ChunkKey::Kind::kContent;
            return true;
        }
        const auto p1 = stem.find('_');
        if (p1 == std::string::npos) {
            return false;
        }
        try {
            out.blob = std::stoull(stem.substr(0, p1));
            out.uid = std::stoull(stem.substr(p1 + 1));
        } catch (const std::exception&) {
            return false;
        }
        out.kind = ChunkKey::Kind::kUid;
        return true;
    }

    static void write_file(const std::filesystem::path& path,
                           const Buffer& data) {
        std::FILE* f = std::fopen(path.c_str(), "wb");
        if (f == nullptr) {
            throw Error("cannot open " + path.string() + " for writing");
        }
        const std::size_t written =
            data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
        std::fclose(f);
        if (written != data.size()) {
            throw Error("short write to " + path.string());
        }
    }

    static ChunkData read_file(const std::filesystem::path& path) {
        std::FILE* f = std::fopen(path.c_str(), "rb");
        if (f == nullptr) {
            throw NotFoundError("chunk file " + path.string());
        }
        std::fseek(f, 0, SEEK_END);
        const long size = std::ftell(f);
        std::fseek(f, 0, SEEK_SET);
        auto buf = std::make_shared<Buffer>(static_cast<std::size_t>(size));
        const std::size_t read =
            buf->empty() ? 0 : std::fread(buf->data(), 1, buf->size(), f);
        std::fclose(f);
        if (read != buf->size()) {
            throw Error("short read from " + path.string());
        }
        return buf;
    }

    const std::filesystem::path dir_;
    std::mutex mu_;  // guards index_ and bytes_
    std::unordered_map<ChunkKey, std::uint64_t, ChunkKeyHash> index_;
    std::uint64_t bytes_ = 0;
    static inline std::atomic<std::uint64_t> tmp_counter_{0};
};

}  // namespace blobseer::chunk
