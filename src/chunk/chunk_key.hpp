/// \file chunk_key.hpp
/// \brief Identity of a stored chunk.
///
/// A chunk is the unit of data striping (paper §I-B.3). Chunks are
/// uploaded *before* the writer knows which version it will become (the
/// paper's write protocol contacts the version manager only after data is
/// on the providers, keeping the serialized window tiny), so the key
/// cannot embed a version. Instead every chunk gets a client-allocated
/// unique id; the metadata tree leaves record it. Chunks are immutable
/// once stored.

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace blobseer::chunk {

struct ChunkKey {
    BlobId blob = kInvalidBlob;
    /// Unique per chunk, allocated by the writing client: mix64 over
    /// (client id << 40 | 64-bit local counter) — collision-free because
    /// mix64 is a bijection and the packed input stays unique for 2^40
    /// allocations per client (see BlobSeerClient::next_uid).
    std::uint64_t uid = 0;

    friend bool operator==(const ChunkKey&, const ChunkKey&) = default;

    /// Stable hash used for placement and storage indexing.
    [[nodiscard]] std::uint64_t hash() const noexcept {
        return mix64(hash_combine(blob, uid));
    }

    [[nodiscard]] std::string to_string() const {
        return "chunk(b" + std::to_string(blob) + ",u" + std::to_string(uid) +
               ")";
    }
};

struct ChunkKeyHash {
    std::size_t operator()(const ChunkKey& k) const noexcept {
        return static_cast<std::size_t>(k.hash());
    }
};

}  // namespace blobseer::chunk
