/// \file chunk_key.hpp
/// \brief Identity of a stored chunk.
///
/// A chunk is the unit of data striping (paper §I-B.3). Chunks are
/// uploaded *before* the writer knows which version it will become (the
/// paper's write protocol contacts the version manager only after data is
/// on the providers, keeping the serialized window tiny), so the key
/// cannot embed a version. Instead every chunk gets a client-allocated
/// unique id; the metadata tree leaves record it. Chunks are immutable
/// once stored.

#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace blobseer::chunk {

struct ChunkKey {
    /// How the (blob, uid) pair below is interpreted.
    enum class Kind : std::uint8_t {
        /// Classic uid-addressed chunk: blob owns it, uid minted by the
        /// writing client. Identity is positional, not content-derived.
        kUid = 0,
        /// Content-addressed chunk: (blob, uid) carry the big-endian
        /// 128-bit truncation of the data's SHA-256 (hi in `blob`, lo in
        /// `uid`). Identical bytes yield identical keys everywhere, which
        /// is what makes check-before-push deduplication possible. The
        /// two keyspaces are kept disjoint by every store (kind-prefixed
        /// persistent keys), so a re-minted uid can never alias a CAS
        /// chunk.
        kContent = 1,
    };

    BlobId blob = kInvalidBlob;
    /// Unique per chunk, allocated by the writing client: mix64 over
    /// (client id << 40 | 64-bit local counter) — collision-free because
    /// mix64 is a bijection and the packed input stays unique for 2^40
    /// allocations per client (see BlobSeerClient::next_uid). For
    /// kContent keys this is the low half of the truncated digest.
    std::uint64_t uid = 0;
    Kind kind = Kind::kUid;

    /// Build a content-addressed key from a 128-bit digest truncation.
    [[nodiscard]] static ChunkKey content(std::uint64_t hi,
                                          std::uint64_t lo) noexcept {
        return ChunkKey{hi, lo, Kind::kContent};
    }

    [[nodiscard]] bool is_content() const noexcept {
        return kind == Kind::kContent;
    }

    friend bool operator==(const ChunkKey&, const ChunkKey&) = default;

    /// Stable hash used for placement and storage indexing. The kind is
    /// mixed in so a uid key and a content key with equal words never
    /// collide in a store's index.
    [[nodiscard]] std::uint64_t hash() const noexcept {
        return mix64(hash_combine(hash_combine(blob, uid),
                                  static_cast<std::uint64_t>(kind)));
    }

    [[nodiscard]] std::string to_string() const {
        if (is_content()) {
            char buf[2 + 32 + 1];
            std::snprintf(buf, sizeof buf, "%016llx%016llx",
                          static_cast<unsigned long long>(blob),
                          static_cast<unsigned long long>(uid));
            return std::string("chunk(sha:") + buf + ")";
        }
        return "chunk(b" + std::to_string(blob) + ",u" + std::to_string(uid) +
               ")";
    }
};

struct ChunkKeyHash {
    std::size_t operator()(const ChunkKey& k) const noexcept {
        return static_cast<std::size_t>(k.hash());
    }
};

}  // namespace blobseer::chunk
