/// \file store.hpp
/// \brief Abstract chunk storage backend used by data providers.
///
/// Implementations: RamStore (the paper's original RAM-only prototype,
/// §IV-A), DiskStore (persistent storage, §IV-B) and TwoTierStore (RAM as
/// a caching layer over disk, the combination §IV-B describes).
///
/// Chunks are immutable: put() of an existing key is idempotent (replicas
/// of the same chunk are bit-identical by construction) and get() returns
/// a shared read-only buffer so concurrent readers never copy under a
/// lock.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "chunk/chunk_key.hpp"
#include "common/buffer.hpp"

namespace blobseer::chunk {

/// Shared immutable chunk payload.
using ChunkData = std::shared_ptr<const Buffer>;

class ChunkStore {
  public:
    virtual ~ChunkStore() = default;

    /// Store \p data under \p key. Idempotent for identical data.
    virtual void put(const ChunkKey& key, ChunkData data) = 0;

    /// Fetch the chunk, or nullopt if this store has never seen it.
    [[nodiscard]] virtual std::optional<ChunkData> get(
        const ChunkKey& key) = 0;

    /// True iff the chunk is retrievable from this store.
    [[nodiscard]] virtual bool contains(const ChunkKey& key) = 0;

    /// Remove a chunk (garbage collection of aborted versions).
    virtual void erase(const ChunkKey& key) = 0;

    /// Number of chunks retrievable.
    [[nodiscard]] virtual std::size_t count() = 0;

    /// Total payload bytes retrievable.
    [[nodiscard]] virtual std::uint64_t bytes() = 0;
};

}  // namespace blobseer::chunk
