/// \file store.hpp
/// \brief Abstract chunk storage backend used by data providers.
///
/// Implementations: RamStore (the paper's original RAM-only prototype,
/// §IV-A), DiskStore (persistent storage, §IV-B) and TwoTierStore (RAM as
/// a caching layer over disk, the combination §IV-B describes).
///
/// Chunks are immutable: put() of an existing key is idempotent (replicas
/// of the same chunk are bit-identical by construction) and get() returns
/// a shared read-only buffer so concurrent readers never copy under a
/// lock.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "chunk/chunk_key.hpp"
#include "common/buffer.hpp"

namespace blobseer::chunk {

/// Shared immutable chunk payload.
using ChunkData = std::shared_ptr<const Buffer>;

/// Borrowed chunk payload: bytes valid while `keepalive` is held. The
/// zero-copy read path (DESIGN.md §15) hands these from the backing
/// engine's segment mappings straight to the RPC response writer.
struct ChunkRef {
    ConstBytes bytes{};
    std::shared_ptr<const void> keepalive{};
};

class ChunkStore {
  public:
    virtual ~ChunkStore() = default;

    /// Store \p data under \p key. Idempotent for identical data.
    virtual void put(const ChunkKey& key, ChunkData data) = 0;

    /// Fetch the chunk, or nullopt if this store has never seen it.
    [[nodiscard]] virtual std::optional<ChunkData> get(
        const ChunkKey& key) = 0;

    /// Borrow the chunk without copying where the backend supports it.
    /// The default adapts get(): the shared ChunkData buffer itself is
    /// the keepalive, so RAM-backed stores are already copy-free here.
    [[nodiscard]] virtual std::optional<ChunkRef> get_ref(
        const ChunkKey& key) {
        auto data = get(key);
        if (!data) {
            return std::nullopt;
        }
        const ConstBytes bytes(**data);
        return ChunkRef{bytes, std::move(*data)};
    }

    /// True iff the chunk is retrievable from this store.
    [[nodiscard]] virtual bool contains(const ChunkKey& key) = 0;

    /// Remove a chunk (garbage collection of aborted versions).
    virtual void erase(const ChunkKey& key) = 0;

    /// Number of chunks retrievable.
    [[nodiscard]] virtual std::size_t count() = 0;

    /// Total payload bytes retrievable.
    [[nodiscard]] virtual std::uint64_t bytes() = 0;

    // ---- reference counting (content-addressed dedup & GC) ----
    //
    // A chunk that is present but has no explicit count record is at
    // implicit refcount 1 (its writer's reference). incref() records an
    // additional reference — a check-before-push hit on a deduplicated
    // content key. decref() releases one reference and erases the chunk
    // when the last one goes; decref of an implicitly-counted chunk is
    // therefore exactly erase(), which lets every client deletion path
    // use decref uniformly for uid and content keys alike.
    //
    // Invariants: the count never understates true references (a
    // retried incref may overstate, which only delays reclaim); a key
    // is managed EITHER through erase() OR through incref/decref, never
    // both. erase() nevertheless discards any count record (backends
    // call drop_ref()) so a later put of the same key restarts at the
    // implicit count instead of resurrecting a stale one. The default
    // implementation below keeps counts in memory; LogStore overrides
    // it to persist counts through the log engine so GC state survives
    // provider restart.

    /// Add one reference. Returns the new count, or 0 if the chunk is
    /// not present (nothing to reference).
    virtual std::uint64_t incref(const ChunkKey& key) {
        const std::scoped_lock lock(ref_mu_);
        if (!contains(key)) {
            return 0;
        }
        const auto it = refs_.find(key);
        const std::uint64_t c = (it == refs_.end() ? 1 : it->second) + 1;
        refs_[key] = c;
        return c;
    }

    /// Drop one reference; erases the chunk when the count reaches zero.
    /// Returns the remaining count (0 = gone). No-op on absent chunks.
    virtual std::uint64_t decref(const ChunkKey& key) {
        {
            const std::scoped_lock lock(ref_mu_);
            if (!contains(key)) {
                refs_.erase(key);
                return 0;
            }
            const auto it = refs_.find(key);
            const std::uint64_t c = it == refs_.end() ? 1 : it->second;
            if (c > 1) {
                if (c - 1 == 1) {
                    refs_.erase(it);  // back to the implicit count
                } else {
                    it->second = c - 1;
                }
                return c - 1;
            }
            refs_.erase(key);
        }
        // Last reference: reclaim outside ref_mu_ — erase() re-enters it
        // via drop_ref. Callers that must not race a fresh incref against
        // this window serialize above the store (DataProvider::cas_mu_).
        erase(key);
        return 0;
    }

    /// Current reference count (0 = not present, 1 = implicit).
    [[nodiscard]] virtual std::uint64_t refcount(const ChunkKey& key) {
        const std::scoped_lock lock(ref_mu_);
        if (!contains(key)) {
            return 0;
        }
        const auto it = refs_.find(key);
        return it == refs_.end() ? 1 : it->second;
    }

  protected:
    /// Backends call this from erase(): the count record dies with the
    /// chunk. Called outside the backend's own locks (refcount paths
    /// take ref_mu_ before backend locks, never the other way).
    void drop_ref(const ChunkKey& key) {
        const std::scoped_lock lock(ref_mu_);
        refs_.erase(key);
    }

  private:
    std::mutex ref_mu_;  // serializes refcount read-modify-write
    std::unordered_map<ChunkKey, std::uint64_t, ChunkKeyHash> refs_;
};

}  // namespace blobseer::chunk
