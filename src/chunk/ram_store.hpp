/// \file ram_store.hpp
/// \brief In-memory chunk store (the paper's original RAM-only prototype).
///
/// Sharded by key hash so that concurrent clients writing to the same
/// provider do not serialize on one mutex (the provider's NIC gate is the
/// intended bottleneck, not a lock).

#pragma once

#include <array>
#include <mutex>
#include <unordered_map>

#include "chunk/store.hpp"
#include "common/stats.hpp"

namespace blobseer::chunk {

class RamStore final : public ChunkStore {
  public:
    void put(const ChunkKey& key, ChunkData data) override {
        Shard& s = shard(key);
        const std::scoped_lock lock(s.mu);
        auto [it, inserted] = s.map.try_emplace(key, std::move(data));
        if (inserted) {
            bytes_.add(it->second->size());
            count_.add();
        }
    }

    [[nodiscard]] std::optional<ChunkData> get(const ChunkKey& key) override {
        Shard& s = shard(key);
        const std::scoped_lock lock(s.mu);
        const auto it = s.map.find(key);
        if (it == s.map.end()) {
            return std::nullopt;
        }
        return it->second;
    }

    [[nodiscard]] bool contains(const ChunkKey& key) override {
        Shard& s = shard(key);
        const std::scoped_lock lock(s.mu);
        return s.map.contains(key);
    }

    void erase(const ChunkKey& key) override {
        drop_ref(key);
        Shard& s = shard(key);
        const std::scoped_lock lock(s.mu);
        const auto it = s.map.find(key);
        if (it != s.map.end()) {
            removed_bytes_.add(it->second->size());
            removed_count_.add();
            s.map.erase(it);
        }
    }

    /// Drop every chunk — models a node whose RAM contents were lost on
    /// crash (used by fault-tolerance tests).
    void clear() {
        for (auto& s : shards_) {
            const std::scoped_lock lock(s.mu);
            for (const auto& [k, v] : s.map) {
                removed_bytes_.add(v->size());
                removed_count_.add();
            }
            s.map.clear();
        }
    }

    [[nodiscard]] std::size_t count() override {
        return count_.get() - removed_count_.get();
    }

    [[nodiscard]] std::uint64_t bytes() override {
        return bytes_.get() - removed_bytes_.get();
    }

  private:
    static constexpr std::size_t kShards = 16;

    struct Shard {
        std::mutex mu;  // guards map
        std::unordered_map<ChunkKey, ChunkData, ChunkKeyHash> map;
    };

    Shard& shard(const ChunkKey& key) noexcept {
        return shards_[key.hash() % kShards];
    }

    std::array<Shard, kShards> shards_;
    Counter bytes_;
    Counter count_;
    Counter removed_bytes_;
    Counter removed_count_;
};

}  // namespace blobseer::chunk
