/// \file log_aggregation.cpp
/// \brief The paper's desktop-grid scenario (§IV-C, [2]): write-intensive
///        workers with random access grain, funneling results into one
///        shared blob under heavy write concurrency.
///
/// A fleet of workers appends fixed-size result records to a shared log
/// blob — concurrently, with no coordination. A checkpointer thread
/// periodically pins the latest snapshot and aggregates the records seen
/// so far (versioning gives it a stable prefix to aggregate, the exact
/// "process a stable snapshot while acquisition continues" pattern of
/// §IV-B). At the end, the example verifies that every record of every
/// worker landed exactly once and that records are never torn.
///
///   $ ./examples/log_aggregation

#include <cstdio>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "core/client.hpp"
#include "core/cluster.hpp"

using namespace blobseer;

namespace {

constexpr std::uint64_t kRecord = 32 << 10;  // one result record (aligned)
constexpr std::size_t kWorkers = 8;
constexpr int kRecordsPerWorker = 10;

/// A record: 8-byte worker id, 8-byte sequence number, payload fill.
Buffer make_record(std::uint64_t worker, std::uint64_t seq) {
    Buffer r(kRecord);
    std::memcpy(r.data(), &worker, 8);
    std::memcpy(r.data() + 8, &seq, 8);
    fill_pattern(worker, seq, 16, MutableBytes(r).subspan(16));
    return r;
}

}  // namespace

int main() {
    core::ClusterConfig cfg;
    cfg.data_providers = 16;
    cfg.metadata_providers = 8;
    cfg.placement = provider::PlacementStrategy::kRoundRobin;
    cfg.network.latency = microseconds(100);
    cfg.network.node_bandwidth_bps = 200ULL << 20;
    core::Cluster cluster(cfg);

    auto coordinator = cluster.make_client();
    core::Blob log = coordinator->create(kRecord);  // 1 record = 1 chunk
    std::printf("shared log blob %llu: %zu workers x %d records of %llu "
                "KB\n",
                static_cast<unsigned long long>(log.id()), kWorkers,
                kRecordsPerWorker,
                static_cast<unsigned long long>(kRecord >> 10));

    std::atomic<bool> done{false};

    // Checkpointer: aggregate stable snapshots while writes continue.
    std::thread checkpointer([&] {
        auto scope = cluster.make_client();
        std::uint64_t last_size = 0;
        while (!done.load()) {
            const auto vi = scope->stat(log.id());
            if (vi.size > last_size) {
                std::printf("  checkpoint: v%llu holds %llu records\n",
                            static_cast<unsigned long long>(vi.version),
                            static_cast<unsigned long long>(vi.size /
                                                            kRecord));
                last_size = vi.size;
            }
            std::this_thread::sleep_for(milliseconds(20));
        }
    });

    // Worker fleet.
    const Stopwatch sw;
    std::vector<std::thread> workers;
    for (std::size_t w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&, w] {
            auto client = cluster.make_client();
            for (int seq = 0; seq < kRecordsPerWorker; ++seq) {
                client->append(log.id(), make_record(w, seq));
            }
        });
    }
    for (auto& t : workers) {
        t.join();
    }
    const double seconds = sw.elapsed_seconds();
    done.store(true);
    checkpointer.join();

    const std::uint64_t total_records = kWorkers * kRecordsPerWorker;
    const auto vi = coordinator->stat(log.id());
    std::printf("\nall workers done in %.2f s: %.1f MB/s aggregate, "
                "%llu versions published\n",
                seconds,
                static_cast<double>(total_records * kRecord) / 1048576.0 /
                    seconds,
                static_cast<unsigned long long>(vi.version));

    // Verification sweep: every (worker, seq) exactly once, no torn
    // records, payload intact.
    Buffer all(vi.size);
    coordinator->read(log.id(), vi.version, 0, all);
    std::map<std::pair<std::uint64_t, std::uint64_t>, int> seen;
    bool ok = vi.size == total_records * kRecord;
    for (std::uint64_t off = 0; off + kRecord <= all.size();
         off += kRecord) {
        std::uint64_t worker = 0;
        std::uint64_t seq = 0;
        std::memcpy(&worker, all.data() + off, 8);
        std::memcpy(&seq, all.data() + off + 8, 8);
        ++seen[{worker, seq}];
        if (verify_pattern(worker, seq, 16,
                           ConstBytes(all).subspan(off + 16,
                                                   kRecord - 16)) != -1) {
            std::printf("TORN record at offset %llu\n",
                        static_cast<unsigned long long>(off));
            ok = false;
        }
    }
    for (std::uint64_t w = 0; w < kWorkers; ++w) {
        for (int s = 0; s < kRecordsPerWorker; ++s) {
            if (seen[{w, static_cast<std::uint64_t>(s)}] != 1) {
                std::printf("record (%llu, %d) seen %d times\n",
                            static_cast<unsigned long long>(w), s,
                            seen[{w, static_cast<std::uint64_t>(s)}]);
                ok = false;
            }
        }
    }
    std::printf("verification: %s — %llu records, each exactly once, "
                "none torn\n",
                ok ? "PASS" : "FAIL",
                static_cast<unsigned long long>(total_records));

    // Show the provider spread (the striping that makes this scale).
    std::printf("chunk distribution over providers:");
    for (std::size_t i = 0; i < cluster.data_provider_count(); ++i) {
        std::printf(" %llu",
                    static_cast<unsigned long long>(
                        cluster.data_provider(i).store().count()));
    }
    std::printf("\n");
    return ok ? 0 : 1;
}
