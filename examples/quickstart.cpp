/// \file quickstart.cpp
/// \brief Five-minute tour of the BlobSeer public API.
///
/// Boots an in-process cluster (8 data providers, 4 metadata providers),
/// then walks the paper's access interface: CREATE, WRITE, APPEND,
/// versioned READ, CLONE and the data-locality query.
///
///   $ ./examples/quickstart

#include <cstdio>

#include "core/client.hpp"
#include "core/cluster.hpp"

using namespace blobseer;

int main() {
    // 1. Boot a cluster. The simulated network charges 100 us latency
    //    and 200 MB/s per NIC so timings look like a small LAN cluster.
    core::ClusterConfig cfg;
    cfg.data_providers = 8;
    cfg.metadata_providers = 4;
    cfg.default_replication = 2;
    cfg.network.latency = microseconds(100);
    cfg.network.node_bandwidth_bps = 200ULL << 20;
    core::Cluster cluster(cfg);
    auto client = cluster.make_client();
    std::printf("cluster up: %zu data providers, %zu metadata providers\n",
                cluster.data_provider_count(),
                cluster.metadata_provider_count());

    // 2. Create a blob with 64 KB chunks, replicated twice.
    core::Blob blob = client->create(64 << 10);
    std::printf("created blob %llu (chunk %llu bytes, replication %u)\n",
                static_cast<unsigned long long>(blob.id()),
                static_cast<unsigned long long>(blob.chunk_size()),
                blob.replication());

    // 3. WRITE: every write produces a new immutable snapshot version.
    const Buffer v1_data = make_pattern(blob.id(), 1, 0, 256 << 10);
    const Version v1 = blob.write(0, v1_data);
    std::printf("write of 256 KB -> version %llu, blob size %llu\n",
                static_cast<unsigned long long>(v1),
                static_cast<unsigned long long>(blob.size()));

    // 4. APPEND grows the blob; readers of v1 are unaffected.
    const Version v2 = blob.append(make_pattern(blob.id(), 2, 0, 128 << 10));
    std::printf("append of 128 KB -> version %llu, blob size %llu\n",
                static_cast<unsigned long long>(v2),
                static_cast<unsigned long long>(blob.size()));

    // 5. Versioned READ: any published snapshot is addressable forever.
    Buffer head(64 << 10);
    blob.read(v1, 0, head);
    std::printf("read v1[0, 64K): %s\n",
                verify_pattern(blob.id(), 1, 0, head) == -1
                    ? "content matches what v1 wrote"
                    : "MISMATCH");
    blob.read(v2, 0, head);
    std::printf("read v2[0, 64K): %s (v2 inherited v1's bytes there)\n",
                verify_pattern(blob.id(), 1, 0, head) == -1 ? "same bytes"
                                                            : "MISMATCH");

    // 6. Overwrite chunk 0 -> version 3; v1/v2 still intact.
    blob.write(0, make_pattern(blob.id(), 3, 0, 64 << 10));
    blob.read(3, 0, head);
    const bool v3_new = verify_pattern(blob.id(), 3, 0, head) == -1;
    blob.read(v2, 0, head);
    const bool v2_old = verify_pattern(blob.id(), 1, 0, head) == -1;
    std::printf("after overwrite: v3 sees new bytes (%s), v2 still old "
                "(%s)\n",
                v3_new ? "yes" : "no", v2_old ? "yes" : "no");

    // 7. CLONE: O(1) writable snapshot sharing storage with the origin.
    core::Blob copy = client->clone(blob.id());
    copy.write(0, Buffer(64 << 10, 0xCC));
    Buffer probe(4);
    copy.read(1, 0, probe);
    blob.read(3, 0, head);
    std::printf("clone diverged (clone[0]=0x%02X) without touching the "
                "origin (%s)\n",
                probe[0],
                verify_pattern(blob.id(), 3, 0, head) == -1 ? "intact"
                                                            : "CORRUPTED");

    // 8. Locality: which providers serve which ranges (what a scheduler
    //    uses to place computation near data).
    const auto locs = client->locate(blob.id(), 3, {0, 256 << 10});
    std::printf("layout of v3[0, 256K): %zu segments\n", locs.size());
    for (const auto& loc : locs) {
        std::string nodes;
        for (const NodeId n : loc.providers) {
            nodes += std::to_string(n) + " ";
        }
        std::printf("  [%8llu, %8llu) on providers %s\n",
                    static_cast<unsigned long long>(loc.range.offset),
                    static_cast<unsigned long long>(loc.range.end()),
                    nodes.c_str());
    }

    // 9. Client-side stats.
    const auto& st = client->stats();
    std::printf("client stats: %llu writes, %llu reads, %llu bytes "
                "written, %llu bytes read\n",
                static_cast<unsigned long long>(st.writes.get() +
                                                st.appends.get()),
                static_cast<unsigned long long>(st.reads.get()),
                static_cast<unsigned long long>(st.bytes_written.get()),
                static_cast<unsigned long long>(st.bytes_read.get()));
    std::printf("quickstart done.\n");
    return 0;
}
