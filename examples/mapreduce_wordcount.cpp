/// \file mapreduce_wordcount.cpp
/// \brief The paper's MapReduce scenario (§IV-D, [16]): a word-count job
///        running on BSFS, BlobSeer's Hadoop-compatible file system.
///
/// The job writes a large synthetic corpus into BSFS, asks locate() for
/// the data layout (the Hadoop locality API the paper added to
/// BlobSeer), schedules one map task per split preferring provider
/// affinity, and has maps emit their partial counts by *concurrently
/// appending* to a shared intermediate file — the access pattern HDFS
/// cannot serve and BSFS makes cheap. A reduce pass folds the partials
/// and the result is verified against a sequential count.
///
///   $ ./examples/mapreduce_wordcount

#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "fs/bsfs.hpp"

using namespace blobseer;

namespace {

constexpr std::uint64_t kChunk = 32 << 10;
constexpr std::size_t kSplits = 8;

const char* kWords[] = {"blob",  "seer",   "chunk", "version",
                        "tree",  "stripe", "grid",  "append"};

/// Deterministic synthetic corpus: space-separated words.
std::string make_corpus(std::size_t words, std::uint64_t seed) {
    Rng rng(seed);
    std::string text;
    for (std::size_t i = 0; i < words; ++i) {
        text += kWords[rng.below(8)];
        text += ' ';
    }
    return text;
}

std::map<std::string, std::uint64_t> count_words(std::string_view text) {
    std::map<std::string, std::uint64_t> counts;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() && text[i] == ' ') {
            ++i;
        }
        std::size_t j = i;
        while (j < text.size() && text[j] != ' ') {
            ++j;
        }
        if (j > i) {
            counts[std::string(text.substr(i, j - i))]++;
        }
        i = j;
    }
    return counts;
}

/// Serialize partial counts as "word count\n" lines padded to one chunk
/// (so each emit is one atomic aligned append).
Buffer serialize_partial(const std::map<std::string, std::uint64_t>& counts) {
    std::string s;
    for (const auto& [w, c] : counts) {
        s += w + " " + std::to_string(c) + "\n";
    }
    Buffer out(kChunk, 0);
    if (s.size() > out.size()) {
        throw Error("partial too large for one record");
    }
    std::memcpy(out.data(), s.data(), s.size());
    return out;
}

}  // namespace

int main() {
    core::ClusterConfig cfg;
    cfg.data_providers = 8;
    cfg.metadata_providers = 4;
    cfg.network.latency = microseconds(100);
    cfg.network.node_bandwidth_bps = 200ULL << 20;
    core::Cluster cluster(cfg);
    fs::Bsfs bsfs(cluster, fs::BsfsConfig{.chunk_size = kChunk,
                                          .replication = {},
                                          .writer_buffer_chunks = 4,
                                          .readahead_chunks = 4});
    auto driver = bsfs.make_client();

    // 1. Ingest the corpus. Each split is generated to end on a word
    //    boundary and padded with spaces to exactly split_bytes, so no
    //    word ever straddles a split (the job a real MapReduce record
    //    reader does with line boundaries).
    driver->mkdirs("/job/input");
    const std::uint64_t split_bytes = 4 * kChunk;
    std::string corpus;
    corpus.reserve(split_bytes * kSplits);
    for (std::size_t s = 0; s < kSplits; ++s) {
        std::string segment = make_corpus(1, 100 + s);
        Rng rng(200 + s);
        while (segment.size() + 16 < split_bytes) {
            segment += kWords[rng.below(8)];
            segment += ' ';
        }
        segment.resize(split_bytes, ' ');
        corpus += segment;
    }
    {
        auto writer = driver->create("/job/input/corpus.txt");
        writer.write(ConstBytes(
            reinterpret_cast<const std::uint8_t*>(corpus.data()),
            corpus.size()));
        writer.close();
    }
    std::printf("ingested corpus: %zu bytes, %zu splits of %llu KB\n",
                corpus.size(), kSplits,
                static_cast<unsigned long long>(split_bytes >> 10));

    // 2. Ask BSFS where the data lives (Hadoop's locality API).
    const auto layout =
        driver->locate("/job/input/corpus.txt", {0, corpus.size()});
    std::printf("layout has %zu segments; first on provider %u\n",
                layout.size(),
                layout.empty() || layout[0].providers.empty()
                    ? kInvalidNode
                    : layout[0].providers[0]);

    // 3. Map phase: one task per split; each emits its partial counts by
    //    appending one record to the SHARED intermediate file.
    {
        auto w = driver->create("/job/intermediate");
        w.close();
    }
    const Stopwatch map_sw;
    std::vector<std::thread> mappers;
    for (std::size_t m = 0; m < kSplits; ++m) {
        mappers.emplace_back([&, m] {
            auto task = bsfs.make_client();
            auto reader = task->open("/job/input/corpus.txt");
            std::string split(split_bytes, '\0');
            reader.read_at(m * split_bytes,
                           MutableBytes(
                               reinterpret_cast<std::uint8_t*>(split.data()),
                               split.size()));
            const auto counts = count_words(split);
            auto out = task->open_append("/job/intermediate");
            out.write(serialize_partial(counts));
            out.close();
        });
    }
    for (auto& t : mappers) {
        t.join();
    }
    std::printf("map phase: %zu tasks appended partials concurrently in "
                "%.2f s\n",
                kSplits, map_sw.elapsed_seconds());

    // 4. Reduce phase: fold the partial records.
    std::map<std::string, std::uint64_t> totals;
    {
        auto reader = driver->open("/job/intermediate");
        Buffer record(kChunk);
        while (reader.read(record) == kChunk) {
            const auto* text = reinterpret_cast<const char*>(record.data());
            std::istringstream in(
                std::string(text, strnlen(text, record.size())));
            std::string word;
            std::uint64_t count = 0;
            while (in >> word >> count) {
                totals[word] += count;
            }
        }
    }

    // 5. Write the result file and verify against a sequential count.
    driver->mkdirs("/job/output");
    {
        std::string result;
        for (const auto& [w, c] : totals) {
            result += w + "\t" + std::to_string(c) + "\n";
        }
        auto writer = driver->create("/job/output/part-00000");
        writer.write(ConstBytes(
            reinterpret_cast<const std::uint8_t*>(result.data()),
            result.size()));
        writer.close();
    }

    const auto expected = count_words(corpus);
    bool ok = totals.size() == expected.size();
    std::uint64_t total_words = 0;
    for (const auto& [w, c] : expected) {
        total_words += c;
        if (totals[w] != c) {
            std::printf("MISMATCH %s: got %llu want %llu\n", w.c_str(),
                        static_cast<unsigned long long>(totals[w]),
                        static_cast<unsigned long long>(c));
            ok = false;
        }
    }
    std::printf("\nword counts (%llu words total):\n",
                static_cast<unsigned long long>(total_words));
    for (const auto& [w, c] : totals) {
        std::printf("  %-8s %llu\n", w.c_str(),
                    static_cast<unsigned long long>(c));
    }
    std::printf("verification vs sequential count: %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
