/// \file vm_image_cloning.cpp
/// \brief The paper's cloud direction (§V): "Adapting BlobSeer to a cloud
///        middleware (such as Nimbus) to offer scalable and performant
///        cloud storage (i.e., for use as virtual machine management in a
///        highly-available IaaS ...)".
///
/// An IaaS image store: one multi-hundred-MB "gold" VM image blob; every
/// instance boot CLONEs it in O(1) and applies copy-on-write
/// customizations (hostname block, log writes). The example measures
/// clone latency, shows that N instances share the gold image's chunks
/// (near-zero incremental storage), verifies isolation between
/// instances, and uses changed_ranges() to ship an incremental "diff
/// backup" of one instance.
///
///   $ ./examples/vm_image_cloning

#include <cstdio>
#include <vector>

#include "core/client.hpp"
#include "core/cluster.hpp"

using namespace blobseer;

namespace {
constexpr std::uint64_t kChunk = 256 << 10;
constexpr std::uint64_t kImageSize = 16ULL << 20;  // scaled-down gold image
constexpr std::size_t kInstances = 8;
}  // namespace

int main() {
    core::ClusterConfig cfg;
    cfg.data_providers = 12;
    cfg.metadata_providers = 6;
    cfg.network.latency = microseconds(100);
    cfg.network.node_bandwidth_bps = 400ULL << 20;
    core::Cluster cluster(cfg);
    auto registry = cluster.make_client();

    // 1. Upload the gold image once.
    core::Blob gold = registry->create(kChunk);
    const Stopwatch upload_sw;
    const std::uint64_t stripe = kImageSize / 8;
    for (std::uint64_t off = 0; off < kImageSize; off += stripe) {
        registry->write(gold.id(), off,
                        make_pattern(gold.id(), 1, off, stripe));
    }
    std::uint64_t gold_bytes = 0;
    for (std::size_t i = 0; i < cluster.data_provider_count(); ++i) {
        gold_bytes += cluster.data_provider(i).stored_bytes();
    }
    std::printf("gold image: %llu MB uploaded in %.2f s (%llu MB stored)\n",
                static_cast<unsigned long long>(kImageSize >> 20),
                upload_sw.elapsed_seconds(),
                static_cast<unsigned long long>(gold_bytes >> 20));

    // 2. Boot N instances: clone + write the per-instance config block.
    std::vector<core::Blob> instances;
    const Stopwatch boot_sw;
    for (std::size_t i = 0; i < kInstances; ++i) {
        core::Blob disk = registry->clone(gold.id());
        // Copy-on-write customization: instance id into block 0.
        Buffer config(kChunk);
        fill_pattern(disk.id(), 1000 + i, 0, config);
        disk.write(0, config);
        instances.push_back(disk);
    }
    const double boot_s = boot_sw.elapsed_seconds();

    std::uint64_t after_boot = 0;
    for (std::size_t i = 0; i < cluster.data_provider_count(); ++i) {
        after_boot += cluster.data_provider(i).stored_bytes();
    }
    std::printf("booted %zu instances in %.3f s (%.1f ms each); "
                "incremental storage %llu KB (vs %llu MB if copied)\n",
                kInstances, boot_s, boot_s * 1000.0 / kInstances,
                static_cast<unsigned long long>((after_boot - gold_bytes) >>
                                                10),
                static_cast<unsigned long long>(
                    (kInstances * kImageSize) >> 20));

    // 3. Instances run: each appends a log region, all share gold data.
    for (std::size_t i = 0; i < kInstances; ++i) {
        instances[i].append(make_pattern(instances[i].id(), 2000 + i, 0,
                                         2 * kChunk));
    }

    // 4. Verify isolation: every instance sees its own block 0 and log,
    //    and untouched middle blocks still come from the gold image.
    bool ok = true;
    for (std::size_t i = 0; i < kInstances; ++i) {
        const auto vi = instances[i].stat();
        Buffer head(kChunk);
        instances[i].read(vi.version, 0, head);
        ok &= verify_pattern(instances[i].id(), 1000 + i, 0, head) == -1;
        Buffer mid(kChunk);
        instances[i].read(vi.version, kImageSize / 2, mid);
        ok &= verify_pattern(gold.id(), 1, kImageSize / 2, mid) == -1;
        Buffer log(2 * kChunk);
        instances[i].read(vi.version, kImageSize, log);
        ok &= verify_pattern(instances[i].id(), 2000 + i, 0, log) == -1;
    }
    std::printf("isolation + sharing verification: %s\n",
                ok ? "PASS" : "FAIL");

    // 5. Incremental backup of instance 0: only the ranges that diverged
    //    from the gold snapshot need shipping.
    const auto diff = registry->changed_ranges(
        instances[0].id(), 0, instances[0].stat().version);
    std::uint64_t diff_bytes = 0;
    std::printf("instance-0 diff vs gold (%zu ranges):\n", diff.size());
    for (const auto& r : diff) {
        diff_bytes += r.size;
        std::printf("  [%9llu, %9llu)\n",
                    static_cast<unsigned long long>(r.offset),
                    static_cast<unsigned long long>(r.end()));
    }
    std::printf("incremental backup: %llu KB instead of %llu MB full "
                "image\n",
                static_cast<unsigned long long>(diff_bytes >> 10),
                static_cast<unsigned long long>(
                    instances[0].stat().size >> 20));

    // 6. Retire intermediate instance snapshots, keeping the latest; the
    //    gold image is pinned automatically (clone origin).
    auto stats = registry->retire_versions(instances[0].id(),
                                           instances[0].stat().version);
    std::printf("retention on instance 0: retired %zu versions, "
                "reclaimed %zu chunks\n",
                stats.versions, stats.chunks);
    Buffer probe(kChunk);
    instances[0].read(instances[0].stat().version, kImageSize / 2, probe);
    std::printf("gold data still readable through instance 0: %s\n",
                verify_pattern(gold.id(), 1, kImageSize / 2, probe) == -1
                    ? "PASS"
                    : "FAIL");
    return ok ? 0 : 1;
}
