/// \file supernova_detection.cpp
/// \brief The paper's astronomy scenario (§IV-A, [15]): supernova
///        detection over a huge shared sky image.
///
/// "Huge data strings representing the view of the sky are shared and
/// accessed by concurrent clients in a fine-grain manner in an attempt
/// to find supernovae in parts of the sky. We targeted efficient
/// fine-grain access by eliminating the need to lock the string itself."
///
/// One *acquisition* thread keeps appending fresh telescope exposures
/// (each exposure = a new snapshot version) while N *detector* threads
/// continuously scan random tiles of the latest *stable* snapshot for
/// candidate events. Versioning is what makes this lock-free: detectors
/// never block the telescope, the telescope never invalidates a scan in
/// progress.
///
///   $ ./examples/supernova_detection

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/client.hpp"
#include "core/cluster.hpp"

using namespace blobseer;

namespace {

constexpr std::uint64_t kTile = 64 << 10;       // one sky tile
constexpr std::uint64_t kExposure = 16 * kTile; // one telescope exposure
constexpr int kExposures = 12;
constexpr std::size_t kDetectors = 6;

/// Synthetic exposure: mostly dim sky; a few deterministic bright pixels
/// (the "supernovae") whose positions depend on the exposure index.
Buffer make_exposure(int index) {
    Buffer data(kExposure, 0x10);  // dim background
    Rng rng(1000 + index);
    const int events = 1 + static_cast<int>(rng.below(3));
    for (int e = 0; e < events; ++e) {
        data[rng.below(kExposure)] = 0xFF;  // bright transient
    }
    return data;
}

bool is_bright(std::uint8_t pixel) { return pixel == 0xFF; }

}  // namespace

int main() {
    core::ClusterConfig cfg;
    cfg.data_providers = 12;
    cfg.metadata_providers = 6;
    cfg.network.latency = microseconds(100);
    cfg.network.node_bandwidth_bps = 200ULL << 20;
    cfg.client_meta_cache_nodes = 65536;  // §IV-A: caching matters here
    core::Cluster cluster(cfg);

    auto telescope = cluster.make_client();
    core::Blob sky = telescope->create(kTile);
    std::printf("sky blob %llu created; %d exposures of %llu KB each\n",
                static_cast<unsigned long long>(sky.id()), kExposures,
                static_cast<unsigned long long>(kExposure >> 10));

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> tiles_scanned{0};
    std::atomic<std::uint64_t> candidates{0};

    // Detector fleet: scan random tiles of the latest published snapshot.
    std::vector<std::thread> detectors;
    for (std::size_t d = 0; d < kDetectors; ++d) {
        detectors.emplace_back([&, d] {
            auto scope = cluster.make_client();
            Rng rng(d + 1);
            Buffer tile(kTile);
            while (!done.load()) {
                const auto vi = scope->stat(sky.id());
                if (vi.size < kTile) {
                    std::this_thread::sleep_for(milliseconds(1));
                    continue;
                }
                // Pin a snapshot, scan one random tile. No locks: the
                // snapshot cannot change underneath us.
                const std::uint64_t tile_index =
                    rng.below(vi.size / kTile);
                scope->read(sky.id(), vi.version, tile_index * kTile, tile);
                for (const std::uint8_t px : tile) {
                    if (is_bright(px)) {
                        candidates.fetch_add(1);
                    }
                }
                tiles_scanned.fetch_add(1);
            }
        });
    }

    // Telescope: append exposures; each append publishes a new version.
    std::uint64_t injected = 0;
    for (int e = 0; e < kExposures; ++e) {
        const Buffer exposure = make_exposure(e);
        for (const std::uint8_t px : exposure) {
            injected += is_bright(px) ? 1 : 0;
        }
        const Version v = sky.append(exposure);
        std::printf("exposure %2d -> version %llu (sky now %llu KB), "
                    "%llu tiles scanned so far\n",
                    e, static_cast<unsigned long long>(v),
                    static_cast<unsigned long long>(sky.size() >> 10),
                    static_cast<unsigned long long>(tiles_scanned.load()));
        std::this_thread::sleep_for(milliseconds(20));
    }
    std::this_thread::sleep_for(milliseconds(100));
    done.store(true);
    for (auto& t : detectors) {
        t.join();
    }

    std::printf("\ninjected %llu bright events across %d exposures\n",
                static_cast<unsigned long long>(injected), kExposures);
    std::printf("detectors scanned %llu tiles, flagged %llu candidate "
                "sightings (tiles are rescanned, so sightings >= events)\n",
                static_cast<unsigned long long>(tiles_scanned.load()),
                static_cast<unsigned long long>(candidates.load()));

    // Final authoritative sweep over the last snapshot.
    auto verifier = cluster.make_client();
    const auto vi = verifier->stat(sky.id());
    Buffer all(vi.size);
    verifier->read(sky.id(), vi.version, 0, all);
    std::uint64_t final_count = 0;
    for (const std::uint8_t px : all) {
        final_count += is_bright(px) ? 1 : 0;
    }
    std::printf("authoritative sweep of v%llu: %llu events (%s)\n",
                static_cast<unsigned long long>(vi.version),
                static_cast<unsigned long long>(final_count),
                final_count == injected ? "matches injected" : "MISMATCH");
    return final_count == injected ? 0 : 1;
}
