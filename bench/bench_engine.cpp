/// \file bench_engine.cpp
/// \brief Storage-engine shootout: file-per-chunk DiskStore vs the
///        log-structured LogStore on a many-small-chunk workload.
///
/// The workload the ROADMAP's production north star implies — millions of
/// 4 KiB–256 KiB chunks — is exactly where file-per-chunk collapses: one
/// inode and a write+rename syscall pair per put, and an O(directory)
/// rescan on every provider restart. This bench measures put, random get
/// and (most importantly) reopen time for both backends at 100k small
/// chunks; the log engine's reopen is a checkpoint load, which must come
/// in at least an order of magnitude faster than DiskStore's rescan.
///
///   $ ./build/bench_engine                 # full run (100k chunks)
///   $ BLOBSEER_BENCH_SCALE=0.05 ./build/bench_engine   # smoke run
///
/// Scale note (see bench_util.hpp): absolute numbers depend on the host
/// filesystem; the claim under test is the *ratio* between backends.

#include <filesystem>
#include <memory>
#include <random>

#include "bench_util.hpp"
#include "chunk/disk_store.hpp"
#include "chunk/log_store.hpp"

using namespace blobseer;
using namespace blobseer::chunk;

namespace {

namespace fs = std::filesystem;

struct Timings {
    double put_s = 0;
    double get_s = 0;
    double reopen_s = 0;
    std::size_t recovered = 0;
};

ChunkData payload(std::uint64_t uid, std::size_t size) {
    return std::make_shared<Buffer>(make_pattern(1, uid, 0, size));
}

/// Deterministic "small chunk" sizes in [128, 4096) — the fine-grain end
/// of the paper's chunk-size range, where per-object overhead dominates.
std::size_t size_of(std::uint64_t uid) {
    return 128 + static_cast<std::size_t>(mix64(uid) % 3968);
}

template <typename MakeStore>
Timings run_backend(const MakeStore& make_store, std::size_t n_chunks,
                    std::size_t n_gets) {
    Timings t;
    {
        auto store = make_store();
        const Stopwatch put_sw;
        for (std::uint64_t i = 0; i < n_chunks; ++i) {
            store->put(ChunkKey{1, i}, payload(i, size_of(i)));
        }
        t.put_s = put_sw.elapsed_seconds();

        std::mt19937_64 rng(7);
        const Stopwatch get_sw;
        for (std::size_t i = 0; i < n_gets; ++i) {
            const std::uint64_t uid = rng() % n_chunks;
            auto got = store->get(ChunkKey{1, uid});
            if (!got || (*got)->size() != size_of(uid)) {
                std::fprintf(stderr, "bench_engine: bad readback uid %llu\n",
                             static_cast<unsigned long long>(uid));
                std::exit(1);
            }
        }
        t.get_s = get_sw.elapsed_seconds();
    }  // close the store (provider shutdown)

    // Provider restart: reopen on the same directory and count recovery.
    const Stopwatch reopen_sw;
    auto reopened = make_store();
    t.recovered = reopened->count();
    t.reopen_s = reopen_sw.elapsed_seconds();
    return t;
}

}  // namespace

int main() {
    const std::size_t n_chunks = bench::scaled(100'000);
    const std::size_t n_gets = bench::scaled(10'000);

    const fs::path root =
        fs::temp_directory_path() /
        ("blobseer-bench-engine-" + std::to_string(::getpid()));
    fs::remove_all(root);

    std::printf("bench_engine: %zu chunks of 128..4096 B, %zu random gets\n",
                n_chunks, n_gets);

    const fs::path disk_dir = root / "disk";
    const Timings disk = run_backend(
        [&] { return std::make_unique<DiskStore>(disk_dir); }, n_chunks,
        n_gets);

    const fs::path log_dir = root / "log";
    const Timings log = run_backend(
        [&] { return std::make_unique<LogStore>(log_dir); }, n_chunks,
        n_gets);

    if (disk.recovered != n_chunks || log.recovered != n_chunks) {
        std::fprintf(stderr,
                     "bench_engine: recovery mismatch (disk %zu, log %zu, "
                     "want %zu)\n",
                     disk.recovered, log.recovered, n_chunks);
        fs::remove_all(root);
        return 1;
    }

    bench::Table table({"backend", "puts/s", "gets/s", "reopen ms",
                        "recovered"});
    const auto rate = [](std::size_t n, double s) {
        return s > 0 ? static_cast<double>(n) / s : 0.0;
    };
    table.row("disk (file-per-chunk)", rate(n_chunks, disk.put_s),
              rate(n_gets, disk.get_s), disk.reopen_s * 1e3, disk.recovered);
    table.row("log  (engine)", rate(n_chunks, log.put_s),
              rate(n_gets, log.get_s), log.reopen_s * 1e3, log.recovered);
    table.print("file-per-chunk vs log engine, " + std::to_string(n_chunks) +
                " small chunks");

    const double speedup =
        log.reopen_s > 0 ? disk.reopen_s / log.reopen_s : 0.0;
    const char* verdict = "";
    if (n_chunks >= 100'000) {  // the bar is defined at 100k chunks
        verdict = speedup >= 10.0 ? " (>= 10x: acceptance met)"
                                  : " (below the 10x acceptance bar)";
    }
    std::printf("\nreopen speedup (disk rescan / log checkpoint load): "
                "%.1fx%s\n",
                speedup, verdict);

    fs::remove_all(root);
    return 0;
}
