/// \file bench_engine.cpp
/// \brief Storage-engine shootout: file-per-chunk DiskStore vs the
///        log-structured LogStore on a many-small-chunk workload — plus
///        the storage-tiering benchmarks of DESIGN.md §14: a working-set
///        sweep over the three-tier store (p50/p99 read latency at
///        0.5x/2x/10x the RAM budget, with and without the compressed
///        file cache) and the compact-time recompression ratio on a
///        compressible corpus.
///
/// The workload the ROADMAP's production north star implies — millions of
/// 4 KiB–256 KiB chunks — is exactly where file-per-chunk collapses: one
/// inode and a write+rename syscall pair per put, and an O(directory)
/// rescan on every provider restart. This bench measures put, random get
/// and (most importantly) reopen time for both backends at 100k small
/// chunks; the log engine's reopen is a checkpoint load, which must come
/// in at least an order of magnitude faster than DiskStore's rescan.
///
///   $ ./build/bench_engine                 # full run (100k chunks)
///   $ BLOBSEER_BENCH_SCALE=0.05 ./build/bench_engine   # smoke run
///
/// Scale note (see bench_util.hpp): absolute numbers depend on the host
/// filesystem; the claim under test is the *ratio* between backends.

#include <algorithm>
#include <filesystem>
#include <memory>
#include <random>
#include <vector>

#include "bench_util.hpp"
#include "cache/compressed_file_cache.hpp"
#include "chunk/disk_store.hpp"
#include "chunk/log_store.hpp"
#include "chunk/tiered_store.hpp"

using namespace blobseer;
using namespace blobseer::chunk;

namespace {

namespace fs = std::filesystem;

struct Timings {
    double put_s = 0;
    double get_s = 0;
    double reopen_s = 0;
    std::size_t recovered = 0;
};

ChunkData payload(std::uint64_t uid, std::size_t size) {
    return std::make_shared<Buffer>(make_pattern(1, uid, 0, size));
}

/// Deterministic "small chunk" sizes in [128, 4096) — the fine-grain end
/// of the paper's chunk-size range, where per-object overhead dominates.
std::size_t size_of(std::uint64_t uid) {
    return 128 + static_cast<std::size_t>(mix64(uid) % 3968);
}

template <typename MakeStore>
Timings run_backend(const MakeStore& make_store, std::size_t n_chunks,
                    std::size_t n_gets) {
    Timings t;
    {
        auto store = make_store();
        const Stopwatch put_sw;
        for (std::uint64_t i = 0; i < n_chunks; ++i) {
            store->put(ChunkKey{1, i}, payload(i, size_of(i)));
        }
        t.put_s = put_sw.elapsed_seconds();

        std::mt19937_64 rng(7);
        const Stopwatch get_sw;
        for (std::size_t i = 0; i < n_gets; ++i) {
            const std::uint64_t uid = rng() % n_chunks;
            auto got = store->get(ChunkKey{1, uid});
            if (!got || (*got)->size() != size_of(uid)) {
                std::fprintf(stderr, "bench_engine: bad readback uid %llu\n",
                             static_cast<unsigned long long>(uid));
                std::exit(1);
            }
        }
        t.get_s = get_sw.elapsed_seconds();
    }  // close the store (provider shutdown)

    // Provider restart: reopen on the same directory and count recovery.
    const Stopwatch reopen_sw;
    auto reopened = make_store();
    t.recovered = reopened->count();
    t.reopen_s = reopen_sw.elapsed_seconds();
    return t;
}

// ---- storage tiering (DESIGN.md §14) ---------------------------------------

/// Compressible chunk: 32-byte runs keyed by uid — distinct bytes per
/// chunk, ~10x compressible under LZ4, the corpus the middle tier and
/// the compactor are built for.
ChunkData runs_payload(std::uint64_t uid, std::size_t size) {
    auto buf = std::make_shared<Buffer>(size);
    for (std::size_t j = 0; j < size; ++j) {
        (*buf)[j] = static_cast<std::uint8_t>((j / 32) + uid);
    }
    return buf;
}

[[nodiscard]] double percentile_us(std::vector<double>& sorted_us, double q) {
    if (sorted_us.empty()) {
        return 0.0;
    }
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted_us.size() - 1));
    return sorted_us[idx];
}

struct SweepPoint {
    double p50_us = 0;
    double p99_us = 0;
    std::uint64_t promotions = 0;   ///< reads served by the file cache
    std::uint64_t backend_gets = 0; ///< reads that reached the engine
};

/// Read every chunk of a working set twice in shuffled order through a
/// TieredStore and record per-get latency.
SweepPoint run_tier_sweep(const fs::path& dir, std::size_t ws_chunks,
                          std::size_t chunk_size, std::uint64_t ram_budget,
                          bool with_file_cache) {
    fs::remove_all(dir);
    std::unique_ptr<cache::CompressedFileCache> fc;
    if (with_file_cache) {
        cache::FileCacheConfig fcfg;
        fcfg.dir = dir / "file-cache";
        // Budget generously above the compressed working set: the sweep
        // measures tier latency, not file-cache eviction.
        fcfg.budget_bytes =
            static_cast<std::uint64_t>(ws_chunks * chunk_size);
        fc = std::make_unique<cache::CompressedFileCache>(fcfg);
    }
    TieredStore store(std::make_unique<LogStore>(dir / "log"), ram_budget,
                      std::move(fc));
    for (std::uint64_t i = 0; i < ws_chunks; ++i) {
        store.put(ChunkKey{2, i}, runs_payload(i, chunk_size));
    }

    std::vector<std::uint64_t> order;
    order.reserve(ws_chunks * 2);
    for (std::uint64_t pass = 0; pass < 2; ++pass) {
        for (std::uint64_t i = 0; i < ws_chunks; ++i) {
            order.push_back(i);
        }
    }
    std::mt19937_64 rng(11);
    std::shuffle(order.begin(), order.end(), rng);

    const std::uint64_t misses_before = store.cache_misses();
    const std::uint64_t promotions_before = store.promotions();
    std::vector<double> lat_us;
    lat_us.reserve(order.size());
    for (const std::uint64_t uid : order) {
        const Stopwatch sw;
        auto got = store.get(ChunkKey{2, uid});
        lat_us.push_back(sw.elapsed_seconds() * 1e6);
        if (!got || (*got)->size() != chunk_size) {
            std::fprintf(stderr, "bench_engine: tier readback failed\n");
            std::exit(1);
        }
    }
    std::sort(lat_us.begin(), lat_us.end());

    SweepPoint p;
    p.p50_us = percentile_us(lat_us, 0.5);
    p.p99_us = percentile_us(lat_us, 0.99);
    p.promotions = store.promotions() - promotions_before;
    p.backend_gets =
        store.cache_misses() - misses_before - p.promotions;
    return p;
}

void run_tiering_section(const fs::path& root) {
    // A deliberately small RAM tier makes the 10x point reachable in a
    // smoke run; the claim under test is the p99 *shape* across working
    // sets, not absolute microseconds.
    const std::uint64_t ram_budget = bench::scaled(4) << 20;
    const std::size_t chunk_size = 16 << 10;
    const double multiples[] = {0.5, 2.0, 10.0};

    bench::Table table({"working set", "file cache", "p50 us", "p99 us",
                        "file-cache hits", "engine reads"});
    for (const double m : multiples) {
        const auto ws_chunks = static_cast<std::size_t>(
            m * static_cast<double>(ram_budget) /
            static_cast<double>(chunk_size));
        for (const bool with_fc : {false, true}) {
            const auto p = run_tier_sweep(root / "tier", ws_chunks,
                                          chunk_size, ram_budget, with_fc);
            char label[32];
            std::snprintf(label, sizeof label, "%.1fx RAM", m);
            table.row(std::string(label), with_fc ? "yes" : "no", p.p50_us,
                      p.p99_us, p.promotions, p.backend_gets);
        }
    }
    table.print("three-tier read latency, RAM budget " +
                std::to_string(ram_budget >> 20) + " MiB, " +
                std::to_string(chunk_size >> 10) + " KiB chunks");
}

void run_compression_section(const fs::path& root) {
    engine::EngineConfig cfg;
    cfg.dir = root / "compress";
    cfg.segment_target_bytes = 256 << 10;
    cfg.checkpoint_interval_records = 0;
    cfg.background_compaction = false;
    cfg.compress_on_compact = true;
    fs::remove_all(cfg.dir);

    const std::size_t n = bench::scaled(256);
    const std::size_t value_size = 32 << 10;
    engine::LogEngine eng(cfg);
    // Triple-put makes every sealed segment ~2/3 dead, so one compact()
    // pass relocates (and recompresses) the whole live corpus.
    for (std::uint64_t i = 0; i < n; ++i) {
        const auto v = runs_payload(i, value_size);
        eng.put("chunk-" + std::to_string(i), *v);
        eng.put("chunk-" + std::to_string(i), *v);
        eng.put("chunk-" + std::to_string(i), *v);
    }
    const auto before = eng.stats();
    const Stopwatch sw;
    const std::size_t compacted = eng.compact();
    const double compact_s = sw.elapsed_seconds();
    const auto after = eng.stats();

    bench::Table table({"metric", "value"});
    table.row("segments compacted", compacted);
    table.row("disk bytes before", before.disk_bytes);
    table.row("disk bytes after", after.disk_bytes);
    table.row("compressed records", after.compact_compressed_records);
    table.row("raw bytes in", after.compact_raw_bytes_in);
    table.row("stored bytes out", after.compact_stored_bytes_out);
    table.print("compact-time recompression, " + std::to_string(n) +
                " chunks of " + std::to_string(value_size >> 10) +
                " KiB (compressible)");

    const double ratio =
        after.compact_stored_bytes_out > 0
            ? static_cast<double>(after.compact_raw_bytes_in) /
                  static_cast<double>(after.compact_stored_bytes_out)
            : 0.0;
    std::printf("\ncompression ratio (raw/stored): %.2fx, compaction took "
                "%.2f s\n",
                ratio, compact_s);
}

}  // namespace

int main() {
    const std::size_t n_chunks = bench::scaled(100'000);
    const std::size_t n_gets = bench::scaled(10'000);

    const fs::path root =
        fs::temp_directory_path() /
        ("blobseer-bench-engine-" + std::to_string(::getpid()));
    fs::remove_all(root);

    std::printf("bench_engine: %zu chunks of 128..4096 B, %zu random gets\n",
                n_chunks, n_gets);

    const fs::path disk_dir = root / "disk";
    const Timings disk = run_backend(
        [&] { return std::make_unique<DiskStore>(disk_dir); }, n_chunks,
        n_gets);

    const fs::path log_dir = root / "log";
    const Timings log = run_backend(
        [&] { return std::make_unique<LogStore>(log_dir); }, n_chunks,
        n_gets);

    if (disk.recovered != n_chunks || log.recovered != n_chunks) {
        std::fprintf(stderr,
                     "bench_engine: recovery mismatch (disk %zu, log %zu, "
                     "want %zu)\n",
                     disk.recovered, log.recovered, n_chunks);
        fs::remove_all(root);
        return 1;
    }

    bench::Table table({"backend", "puts/s", "gets/s", "reopen ms",
                        "recovered"});
    const auto rate = [](std::size_t n, double s) {
        return s > 0 ? static_cast<double>(n) / s : 0.0;
    };
    table.row("disk (file-per-chunk)", rate(n_chunks, disk.put_s),
              rate(n_gets, disk.get_s), disk.reopen_s * 1e3, disk.recovered);
    table.row("log  (engine)", rate(n_chunks, log.put_s),
              rate(n_gets, log.get_s), log.reopen_s * 1e3, log.recovered);
    table.print("file-per-chunk vs log engine, " + std::to_string(n_chunks) +
                " small chunks");

    const double speedup =
        log.reopen_s > 0 ? disk.reopen_s / log.reopen_s : 0.0;
    const char* verdict = "";
    if (n_chunks >= 100'000) {  // the bar is defined at 100k chunks
        verdict = speedup >= 10.0 ? " (>= 10x: acceptance met)"
                                  : " (below the 10x acceptance bar)";
    }
    std::printf("\nreopen speedup (disk rescan / log checkpoint load): "
                "%.1fx%s\n",
                speedup, verdict);

    run_tiering_section(root);
    run_compression_section(root);

    fs::remove_all(root);
    return 0;
}
