/// \file bench_a2_replication.cpp
/// \brief Ablation A2: the cost of chunk replication and the transfer
///        topology (direct client fan-out vs provider-to-provider
///        pipelining).
///
/// The paper adds "configurable per-blob data replication capabilities"
/// in §IV-E without fixing a transfer topology. Both obvious choices are
/// implemented; this bench quantifies the trade-off: with direct
/// fan-out, write throughput divides by the replication factor (the
/// client uplink sends every copy); pipelining keeps the client cost
/// flat and shifts copying onto provider NICs.

#include "bench_util.hpp"

namespace {

using namespace blobseer;
using namespace blobseer::bench;

constexpr std::uint64_t kChunk = 64 << 10;

double run_one(std::uint32_t replication, bool pipelined,
               std::size_t clients) {
    auto cfg = grid_config(12, 6);
    cfg.pipelined_replication = pipelined;
    core::Cluster cluster(cfg);
    auto owner = cluster.make_client();
    core::Blob blob = owner->create(kChunk, replication);

    const std::uint64_t region = scaled(48) * kChunk;  // 3 MB per writer
    std::vector<std::unique_ptr<core::BlobSeerClient>> cs;
    for (std::size_t i = 0; i < clients; ++i) {
        cs.push_back(cluster.make_client());
    }
    const double sec = run_clients(clients, [&](std::size_t i) {
        cs[i]->write(blob.id(), i * region,
                     make_pattern(blob.id(), i, 0, region));
    });
    return mbps(clients * region, sec);
}

/// Repair throughput: write a replicated blob, kill one provider with
/// data loss, and time a synchronous drain of the repair queue. The
/// drain re-replicates every chunk the dead provider held onto the
/// survivors; copies/s is the recovery-speed figure of merit (DESIGN.md
/// §12) and scales with the per-copy transfer cost, so higher
/// replication repairs faster per lost byte (more sources, same copies).
void run_repair() {
    Table table({"replication", "copies", "repair s", "copies/s",
                 "repair MB/s"});
    for (const std::uint32_t r : {2, 3}) {
        auto cfg = grid_config(12, 6);
        core::Cluster cluster(cfg);
        auto client = cluster.make_client();
        core::Blob blob = client->create(kChunk, r);
        const std::uint64_t bytes = scaled(192) * kChunk;  // 12 MB
        client->write(blob.id(), 0, make_pattern(blob.id(), 1, 0, bytes));

        cluster.kill_data_provider(0, /*lose_volatile=*/true);
        const Stopwatch sw;
        const std::uint64_t copies = cluster.drain_repairs();
        const double sec = sw.elapsed_seconds();
        table.row(r, copies, sec,
                  sec > 0.0 ? static_cast<double>(copies) / sec : 0.0,
                  mbps(copies * kChunk, sec));
    }
    table.print(
        "A2b: re-replication throughput after a provider death with data "
        "loss (12 providers, 12 MB blob)");
}

void run() {
    // Two regimes. A lone writer is uplink-bound: pipelining offloads
    // copies onto provider NICs and wins. Many writers saturate provider
    // NICs instead: forwarding adds provider load and direct fan-out
    // wins. Both effects are real deployment trade-offs.
    for (const std::size_t clients : {std::size_t{1}, std::size_t{8}}) {
        Table table({"replication", "direct MB/s", "pipelined MB/s",
                     "pipeline gain"});
        for (const std::uint32_t r : {1, 2, 3}) {
            const double direct = run_one(r, false, clients);
            const double piped = run_one(r, true, clients);
            table.row(r, direct, piped, piped / direct);
        }
        table.print("A2: replica transfer topology, " +
                    std::to_string(clients) +
                    " writer(s), 3 MB each (12 providers)");
    }
    run_repair();
}

}  // namespace

int main() {
    run();
    return 0;
}
