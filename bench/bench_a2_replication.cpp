/// \file bench_a2_replication.cpp
/// \brief Ablation A2: the cost of chunk replication and the transfer
///        topology (direct client fan-out vs provider-to-provider
///        pipelining).
///
/// The paper adds "configurable per-blob data replication capabilities"
/// in §IV-E without fixing a transfer topology. Both obvious choices are
/// implemented; this bench quantifies the trade-off: with direct
/// fan-out, write throughput divides by the replication factor (the
/// client uplink sends every copy); pipelining keeps the client cost
/// flat and shifts copying onto provider NICs.

#include "bench_util.hpp"

namespace {

using namespace blobseer;
using namespace blobseer::bench;

constexpr std::uint64_t kChunk = 64 << 10;

double run_one(std::uint32_t replication, bool pipelined,
               std::size_t clients) {
    auto cfg = grid_config(12, 6);
    cfg.pipelined_replication = pipelined;
    core::Cluster cluster(cfg);
    auto owner = cluster.make_client();
    core::Blob blob = owner->create(kChunk, replication);

    const std::uint64_t region = scaled(48) * kChunk;  // 3 MB per writer
    std::vector<std::unique_ptr<core::BlobSeerClient>> cs;
    for (std::size_t i = 0; i < clients; ++i) {
        cs.push_back(cluster.make_client());
    }
    const double sec = run_clients(clients, [&](std::size_t i) {
        cs[i]->write(blob.id(), i * region,
                     make_pattern(blob.id(), i, 0, region));
    });
    return mbps(clients * region, sec);
}

void run() {
    // Two regimes. A lone writer is uplink-bound: pipelining offloads
    // copies onto provider NICs and wins. Many writers saturate provider
    // NICs instead: forwarding adds provider load and direct fan-out
    // wins. Both effects are real deployment trade-offs.
    for (const std::size_t clients : {std::size_t{1}, std::size_t{8}}) {
        Table table({"replication", "direct MB/s", "pipelined MB/s",
                     "pipeline gain"});
        for (const std::uint32_t r : {1, 2, 3}) {
            const double direct = run_one(r, false, clients);
            const double piped = run_one(r, true, clients);
            table.row(r, direct, piped, piped / direct);
        }
        table.print("A2: replica transfer topology, " +
                    std::to_string(clients) +
                    " writer(s), 3 MB each (12 providers)");
    }
}

}  // namespace

int main() {
    run();
    return 0;
}
