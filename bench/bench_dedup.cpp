/// \file bench_dedup.cpp
/// \brief Content-addressed storage (DESIGN.md §11): what deduplication
///        buys on the wire and on disk.
///
///   A. Second identical write: a client re-ingesting content that is
///      already stored should transfer almost nothing — every chunk
///      check-hits and only metadata is published. The headline number
///      is bytes-on-wire for write #2 as a fraction of write #1
///      (acceptance: <= 10%).
///   B. Cross-client ingest of a shared dataset: N clients each write
///      the same corpus into their own blob. Aggregate logical
///      throughput rises with the client count while physical transfer
///      stays a single copy.
///   C. Delete + GC: two blobs share half their chunks. Deleting one
///      reclaims only the unshared half (refcounts protect the rest);
///      deleting the survivor empties the providers.

#include <memory>

#include "bench_util.hpp"

namespace {

using namespace blobseer;
using namespace blobseer::bench;

[[nodiscard]] core::ClusterConfig cas_config(std::size_t dp,
                                             std::size_t mp) {
    auto cfg = grid_config(dp, mp);
    cfg.content_addressed = true;
    return cfg;
}

struct ProviderTotals {
    std::uint64_t stored_bytes = 0;
    std::uint64_t chunks_stored = 0;
    std::uint64_t reclaimed_bytes = 0;
};

[[nodiscard]] ProviderTotals provider_totals(core::Cluster& cluster) {
    ProviderTotals t;
    for (std::size_t i = 0; i < cluster.data_provider_count(); ++i) {
        const auto st = cluster.data_provider(i).dedup_status();
        t.stored_bytes += st.stored_bytes;
        t.chunks_stored += st.chunks_stored;
        t.reclaimed_bytes += st.reclaimed_bytes;
    }
    return t;
}

void second_write_is_free() {
    constexpr std::uint64_t kChunk = 256 << 10;
    const std::uint64_t size = scaled(64) * kChunk;

    auto cluster = std::make_unique<core::Cluster>(cas_config(8, 4));
    auto writer = cluster->make_client();
    // Content is keyed off a fixed pattern id so both blobs carry
    // byte-identical data regardless of their blob ids.
    const Buffer data = make_pattern(1, 7, 0, size);

    Table table({"write", "logical MB", "wire MB", "vs first",
                 "stored MB", "MB/s"});
    std::uint64_t sent0 = 0;
    std::uint64_t first_wire = 0;
    std::uint64_t second_wire = 0;
    for (int pass = 1; pass <= 2; ++pass) {
        core::Blob blob = writer->create(kChunk);
        const Stopwatch sw;
        writer->write(blob.id(), 0, data);
        const double secs = sw.elapsed_seconds();
        const std::uint64_t sent = writer->stats().cas_bytes_sent.get();
        const std::uint64_t wire = sent - sent0;
        sent0 = sent;
        (pass == 1 ? first_wire : second_wire) = wire;
        const auto totals = provider_totals(*cluster);
        table.row(pass == 1 ? "first" : "second (identical)",
                  static_cast<double>(size) / (1024.0 * 1024.0),
                  static_cast<double>(wire) / (1024.0 * 1024.0),
                  first_wire == 0
                      ? 0.0
                      : static_cast<double>(wire) /
                            static_cast<double>(first_wire),
                  static_cast<double>(totals.stored_bytes) /
                      (1024.0 * 1024.0),
                  mbps(size, secs));
    }
    table.print("A. second identical write, bytes on the wire");
    std::printf("second/first wire ratio: %.4f (target <= 0.10)\n",
                first_wire == 0 ? 0.0
                                : static_cast<double>(second_wire) /
                                      static_cast<double>(first_wire));
    std::fflush(stdout);
}

void shared_corpus_ingest() {
    constexpr std::uint64_t kChunk = 256 << 10;
    const std::uint64_t size = scaled(32) * kChunk;
    const Buffer corpus = make_pattern(2, 11, 0, size);

    Table table({"clients", "logical MB", "wire MB", "stored MB",
                 "agg MB/s"});
    for (const std::size_t clients : {1, 2, 4, 8}) {
        auto cluster = std::make_unique<core::Cluster>(cas_config(8, 4));
        std::vector<std::unique_ptr<core::BlobSeerClient>> cs;
        std::vector<BlobId> blobs;
        for (std::size_t i = 0; i < clients; ++i) {
            cs.push_back(cluster->make_client());
            blobs.push_back(cs.back()->create(kChunk).id());
        }
        const double secs = run_clients(clients, [&](std::size_t i) {
            cs[i]->write(blobs[i], 0, corpus);
        });
        std::uint64_t wire = 0;
        for (const auto& c : cs) {
            wire += c->stats().cas_bytes_sent.get();
        }
        const auto totals = provider_totals(*cluster);
        table.row(clients,
                  static_cast<double>(size * clients) / (1024.0 * 1024.0),
                  static_cast<double>(wire) / (1024.0 * 1024.0),
                  static_cast<double>(totals.stored_bytes) /
                      (1024.0 * 1024.0),
                  mbps(size * clients, secs));
    }
    table.print("B. N clients ingest the same corpus (one physical copy)");
}

void delete_reclaims() {
    constexpr std::uint64_t kChunk = 256 << 10;
    const std::uint64_t half = scaled(32) * kChunk;

    auto cluster = std::make_unique<core::Cluster>(cas_config(8, 4));
    auto client = cluster->make_client();
    const Buffer shared = make_pattern(3, 1, 0, half);
    const Buffer only_a = make_pattern(3, 2, 0, half);
    const Buffer only_b = make_pattern(3, 3, 0, half);

    core::Blob a = client->create(kChunk);
    client->write(a.id(), 0, shared);
    client->write(a.id(), half, only_a);
    core::Blob b = client->create(kChunk);
    client->write(b.id(), 0, shared);
    client->write(b.id(), half, only_b);

    Table table({"step", "stored MB", "chunks", "reclaimed MB"});
    auto row = [&](const char* step) {
        const auto t = provider_totals(*cluster);
        table.row(step,
                  static_cast<double>(t.stored_bytes) / (1024.0 * 1024.0),
                  t.chunks_stored,
                  static_cast<double>(t.reclaimed_bytes) /
                      (1024.0 * 1024.0));
    };
    row("two blobs, half shared");
    const auto da = client->delete_blob(a.id());
    row("delete A (shared half survives)");
    const auto db = client->delete_blob(b.id());
    row("delete B (store empties)");
    table.print("C. delete + GC reclaims only unshared chunks");
    std::printf("delete A released %zu chunk refs, delete B released "
                "%zu\n",
                da.chunks, db.chunks);
    std::fflush(stdout);
}

}  // namespace

int main() {
    std::printf("bench_dedup: content-addressed dedup and GC "
                "(scale=%.2f)\n",
                bench_scale());
    second_write_is_free();
    shared_corpus_ingest();
    delete_reclaims();
    return 0;
}
