/// \file bench_e2_metadata_cache.cpp
/// \brief Experiment E2 (paper §IV-A, results of [15]): the
///        supernova-detection access pattern — concurrent fine-grain
///        random reads of a huge shared blob — with and without
///        client-side metadata caching.
///
/// Reproduces: "Our results show good concurrent access performance and
/// also underline the benefits of metadata caching on the client side."
/// Expected shape: with caching, repeated rounds over the sky keep read
/// latency flat and metadata traffic collapses after round 1; without
/// caching, every read pays the full O(log n) DHT descent forever.

#include <atomic>

#include "baseline/lock_manager.hpp"
#include "bench_util.hpp"

namespace {

using namespace blobseer;
using namespace blobseer::bench;

constexpr std::uint64_t kChunk = 64 << 10;

struct RoundResult {
    double mbps = 0;
    double meta_gets_per_read = 0;
    double ms_per_read = 0;
};

RoundResult run_round(core::Cluster& cluster,
                      std::vector<std::unique_ptr<core::BlobSeerClient>>& cs,
                      BlobId blob, std::uint64_t blob_size,
                      std::size_t reads_per_client, std::uint64_t read_size,
                      std::uint64_t seed) {
    std::uint64_t gets0 = 0;
    for (std::size_t i = 0; i < cluster.metadata_provider_count(); ++i) {
        gets0 += cluster.metadata_provider(i).stats().ops.get();
    }
    const std::size_t clients = cs.size();
    const Stopwatch sw;
    run_clients(clients, [&](std::size_t i) {
        Rng rng(seed * 1000 + i);
        Buffer out(read_size);
        for (std::size_t r = 0; r < reads_per_client; ++r) {
            // Random sky tile, chunk-aligned like the telescope pipeline.
            const std::uint64_t tiles = blob_size / read_size;
            const std::uint64_t tile = rng.below(tiles);
            cs[i]->read(blob, kLatestVersion, tile * read_size, out);
        }
    });
    const double sec = sw.elapsed_seconds();
    std::uint64_t gets1 = 0;
    for (std::size_t i = 0; i < cluster.metadata_provider_count(); ++i) {
        gets1 += cluster.metadata_provider(i).stats().ops.get();
    }
    const auto total_reads =
        static_cast<double>(clients * reads_per_client);
    RoundResult res;
    res.mbps = mbps(clients * reads_per_client * read_size, sec);
    res.meta_gets_per_read =
        static_cast<double>(gets1 - gets0) / total_reads;
    res.ms_per_read = sec * 1000.0 / total_reads;
    return res;
}

void run() {
    const std::size_t clients = 16;
    const std::uint64_t blob_size = scaled(512) * kChunk;  // 32 MB sky
    const std::uint64_t read_size = 2 * kChunk;            // 128 KB tiles
    const std::size_t reads_per_client = scaled(32);

    Table table({"cache", "round", "agg MB/s", "meta RPC/read", "ms/read"});

    for (const bool cached : {false, true}) {
        auto cfg = grid_config(16, 8);
        cfg.client_meta_cache_nodes = cached ? 65536 : 0;
        core::Cluster cluster(cfg);
        auto owner = cluster.make_client();
        core::Blob blob = owner->create(kChunk);
        // Build the sky image.
        const std::uint64_t stripe = blob_size / 8;
        for (std::uint64_t off = 0; off < blob_size; off += stripe) {
            owner->write(blob.id(), off,
                         make_pattern(blob.id(), 1, off, stripe));
        }

        std::vector<std::unique_ptr<core::BlobSeerClient>> cs;
        for (std::size_t i = 0; i < clients; ++i) {
            cs.push_back(cluster.make_client());
        }
        for (int round = 1; round <= 3; ++round) {
            const auto r = run_round(cluster, cs, blob.id(), blob_size,
                                     reads_per_client, read_size,
                                     static_cast<std::uint64_t>(round));
            table.row(cached ? "on" : "off", round, r.mbps,
                      r.meta_gets_per_read, r.ms_per_read);
        }
    }
    table.print(
        "E2: supernova pattern — 16 clients, random 128 KB tiles of a "
        "32 MB blob, client metadata cache off/on");
}

/// E2b: lock-free versioned access vs a global reader-writer lock
/// (paper §IV-A/[15]: "eliminating the need to lock the string itself").
/// N readers scan random tiles while writers continuously rewrite tiles;
/// with the lock, every writer pass stalls the whole reader fleet and
/// every op pays lock RPCs; with versioning, readers never block.
void lock_free_vs_locked() {
    const std::size_t readers = 12;
    const std::size_t writers = 2;
    const std::uint64_t blob_size = 128 * kChunk;
    const std::uint64_t tile = 2 * kChunk;
    const std::size_t reads_per_client = scaled(24);
    const std::size_t writes_per_client = scaled(12);

    Table table({"mode", "read MB/s", "write MB/s"});
    for (const bool locked : {true, false}) {
        auto cfg = grid_config(16, 8);
        core::Cluster cluster(cfg);
        const NodeId lm_node = cluster.network().add_node("lock-manager");
        baseline::LockManager lm(lm_node);

        auto owner = cluster.make_client();
        core::Blob blob = owner->create(kChunk);
        owner->write(blob.id(), 0, make_pattern(blob.id(), 0, 0, blob_size));

        std::vector<std::unique_ptr<core::BlobSeerClient>> cs;
        for (std::size_t i = 0; i < readers + writers; ++i) {
            cs.push_back(cluster.make_client());
        }
        std::atomic<std::uint64_t> read_bytes{0};
        std::atomic<std::uint64_t> write_bytes{0};

        auto lock_rpc = [&](NodeId self, auto&& fn) {
            cluster.network().call(self, lm_node, 32, 16, fn);
        };

        const double sec = run_clients(readers + writers, [&](std::size_t i) {
            Rng rng(i + 1);
            auto& client = *cs[i];
            if (i < readers) {
                Buffer out(tile);
                for (std::size_t k = 0; k < reads_per_client; ++k) {
                    const std::uint64_t off =
                        rng.below(blob_size / tile) * tile;
                    if (locked) {
                        lock_rpc(client.node(),
                                 [&] { lm.lock_shared(blob.id()); });
                        client.read(blob.id(), kLatestVersion, off, out);
                        lock_rpc(client.node(),
                                 [&] { lm.unlock_shared(blob.id()); });
                    } else {
                        client.read(blob.id(), kLatestVersion, off, out);
                    }
                    read_bytes.fetch_add(tile);
                }
            } else {
                for (std::size_t k = 0; k < writes_per_client; ++k) {
                    const std::uint64_t off =
                        rng.below(blob_size / tile) * tile;
                    const Buffer data =
                        make_pattern(blob.id(), i * 100 + k, 0, tile);
                    if (locked) {
                        lock_rpc(client.node(),
                                 [&] { lm.lock_exclusive(blob.id()); });
                        client.write(blob.id(), off, data);
                        lock_rpc(client.node(),
                                 [&] { lm.unlock_exclusive(blob.id()); });
                    } else {
                        client.write(blob.id(), off, data);
                    }
                    write_bytes.fetch_add(tile);
                }
            }
        });
        table.row(locked ? "global RW lock" : "versioned (lock-free)",
                  mbps(read_bytes.load(), sec),
                  mbps(write_bytes.load(), sec));
    }
    table.print(
        "E2b: 12 readers + 2 writers on one blob — global lock vs "
        "versioning-based concurrency control");
}

}  // namespace

int main() {
    run();
    lock_free_vs_locked();
    return 0;
}
