/// \file bench_e4_meta_decentral.cpp
/// \brief Experiment E4 (paper §IV-C, results of [2]): high write
///        throughput in desktop grids — the impact of data and metadata
///        decentralization.
///
/// Part A: aggregate write throughput vs concurrent writers for a
/// *centralized* metadata service (1 provider) vs the *decentralized*
/// DHT (8 providers) with identical total service capacity per node.
/// The paper "insisted in a final large scale experiment on the
/// importance of the latter on sustaining high write throughput when
/// under heavy write concurrency. Results suggest clear benefits of
/// using a decentralized metadata approach" — the centralized curve
/// flattens early; the DHT keeps scaling.
///
/// Part B: data striping — aggregate write throughput vs the number of
/// data providers at fixed concurrency.

#include "bench_util.hpp"

namespace {

using namespace blobseer;
using namespace blobseer::bench;

constexpr std::uint64_t kChunk = 64 << 10;

double write_workload(std::size_t clients, std::size_t meta_providers,
                      std::size_t data_providers,
                      std::uint64_t meta_ops_per_second) {
    auto cfg = grid_config(data_providers, meta_providers,
                           meta_ops_per_second);
    core::Cluster cluster(cfg);
    auto owner = cluster.make_client();
    core::Blob blob = owner->create(kChunk);

    const std::uint64_t region = scaled(8) * kChunk;  // 512 KB per writer
    std::vector<std::unique_ptr<core::BlobSeerClient>> cs;
    for (std::size_t i = 0; i < clients; ++i) {
        cs.push_back(cluster.make_client());
    }
    const std::size_t rounds = 2;
    const double sec = run_clients(clients, [&](std::size_t i) {
        for (std::size_t r = 0; r < rounds; ++r) {
            cs[i]->write(blob.id(), i * region,
                         make_pattern(blob.id(), i * 10 + r, 0, region));
        }
    });
    return mbps(clients * rounds * region, sec);
}

void sweep_metadata() {
    Table table({"writers", "central MB/s", "DHT(8) MB/s", "speedup"});
    // Metadata service capacity: 3000 ops/s per node. The centralized
    // configuration has ONE such node (as a single metadata server
    // machine would); the DHT spreads the same per-node capacity over 8.
    const std::uint64_t per_node_ops = 3000;
    for (const std::size_t clients : {1, 2, 4, 8, 16, 32}) {
        const double central = write_workload(clients, 1, 16, per_node_ops);
        const double dht = write_workload(clients, 8, 16, per_node_ops);
        table.row(clients, central, dht, dht / central);
    }
    table.print(
        "E4a: write throughput, centralized vs decentralized metadata "
        "(16 data providers, 512 KB x2 per writer)");
}

void sweep_striping() {
    Table table({"data providers", "agg write MB/s"});
    const std::size_t clients = 16;
    for (const std::size_t providers : {1, 2, 4, 8, 16, 32}) {
        table.row(providers, write_workload(clients, 8, providers, 20'000));
    }
    table.print(
        "E4b: data striping — write throughput vs number of data "
        "providers (16 writers)");
}

}  // namespace

int main() {
    sweep_metadata();
    sweep_striping();
    return 0;
}
