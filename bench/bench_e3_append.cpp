/// \file bench_e3_append.cpp
/// \brief Experiment E3 (paper §IV-B, results of [3]): concurrent append
///        performance.
///
/// Part A sweeps the number of concurrent appenders to one blob; part B
/// sweeps the append size at a fixed concurrency. The paper's claim:
/// "Results suggest a good scalability with respect to the data size and
/// to the number of concurrent accesses" — appends only serialize at the
/// (tiny) version-manager assign step, so aggregate throughput grows
/// with the appender count until provider NICs saturate.

#include "bench_util.hpp"

namespace {

using namespace blobseer;
using namespace blobseer::bench;

constexpr std::uint64_t kChunk = 64 << 10;

void sweep_appenders() {
    Table table({"appenders", "agg MB/s", "appends/s", "publish lag ok"});
    const std::size_t per_client = scaled(8);
    const std::uint64_t append_size = 4 * kChunk;  // 256 KB

    for (const std::size_t clients : {1, 2, 4, 8, 16, 32}) {
        auto cfg = grid_config(16, 8);
        core::Cluster cluster(cfg);
        auto owner = cluster.make_client();
        core::Blob blob = owner->create(kChunk);

        std::vector<std::unique_ptr<core::BlobSeerClient>> cs;
        for (std::size_t i = 0; i < clients; ++i) {
            cs.push_back(cluster.make_client());
        }
        const double sec = run_clients(clients, [&](std::size_t i) {
            for (std::size_t k = 0; k < per_client; ++k) {
                cs[i]->append(blob.id(),
                              make_pattern(blob.id(), i * 100 + k, 0,
                                           append_size));
            }
        });
        const std::uint64_t total = clients * per_client * append_size;
        // In-order publication must have caught up with all commits.
        const auto vi = owner->stat(blob.id());
        table.row(clients, mbps(total, sec),
                  static_cast<double>(clients * per_client) / sec,
                  vi.version == clients * per_client ? "yes" : "NO");
    }
    table.print(
        "E3a: concurrent appenders to one blob (256 KB appends, 16 data "
        "providers)");
}

void sweep_append_size() {
    Table table({"append KB", "agg MB/s", "ms/append"});
    const std::size_t clients = 8;

    for (const std::uint64_t chunks : {1, 2, 4, 8, 16}) {
        const std::uint64_t append_size = chunks * kChunk;
        const std::size_t per_client = scaled(8);
        auto cfg = grid_config(16, 8);
        core::Cluster cluster(cfg);
        auto owner = cluster.make_client();
        core::Blob blob = owner->create(kChunk);
        std::vector<std::unique_ptr<core::BlobSeerClient>> cs;
        for (std::size_t i = 0; i < clients; ++i) {
            cs.push_back(cluster.make_client());
        }
        const double sec = run_clients(clients, [&](std::size_t i) {
            for (std::size_t k = 0; k < per_client; ++k) {
                cs[i]->append(blob.id(),
                              make_pattern(blob.id(), i, 0, append_size));
            }
        });
        table.row(append_size >> 10,
                  mbps(clients * per_client * append_size, sec),
                  sec * 1000.0 /
                      static_cast<double>(clients * per_client));
    }
    table.print("E3b: append size sweep (8 concurrent appenders)");
}

}  // namespace

int main() {
    sweep_appenders();
    sweep_append_size();
    return 0;
}
