/// \file bench_util.hpp
/// \brief Shared experiment-harness utilities: Grid'5000-flavoured
///        cluster configurations, a multi-client workload driver and a
///        plain-text table printer that mimics the paper's figures.
///
/// Scale note: every bench models a 1 GbE cluster scaled down so the
/// whole suite runs in minutes on one machine. EXPERIMENTS.md records the
/// mapping and compares curve *shapes* (who wins, where curves flatten)
/// rather than absolute MB/s, per DESIGN.md §2.

#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "core/client.hpp"
#include "core/cluster.hpp"

namespace blobseer::bench {

/// Scale factor for quick smoke runs: BLOBSEER_BENCH_SCALE=0.25 quarters
/// the per-client work. Defaults to 1.
[[nodiscard]] inline double bench_scale() {
    const char* env = std::getenv("BLOBSEER_BENCH_SCALE");
    if (env == nullptr) {
        return 1.0;
    }
    const double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
}

[[nodiscard]] inline std::size_t scaled(std::size_t n) {
    const double s = bench_scale();
    const auto v = static_cast<std::size_t>(n * s);
    return v == 0 ? 1 : v;
}

/// Cluster configuration modeling a slice of Grid'5000: 1 GbE NICs
/// (scaled to 100 MB/s), ~150 us one-way latency, DHT metadata providers
/// with finite service capacity.
[[nodiscard]] inline core::ClusterConfig grid_config(
    std::size_t data_providers, std::size_t metadata_providers,
    std::uint64_t meta_ops_per_second = 20'000) {
    core::ClusterConfig cfg;
    cfg.data_providers = data_providers;
    cfg.metadata_providers = metadata_providers;
    cfg.network.latency = microseconds(150);
    cfg.network.node_bandwidth_bps = 100ULL << 20;  // 100 MB/s per NIC
    cfg.meta_ops_per_second = meta_ops_per_second;
    cfg.client_io_threads = 4;
    cfg.publish_timeout = seconds(60);
    return cfg;
}

/// Run \p clients threads, each executing fn(client_index), and return
/// the wall-clock seconds the slowest took.
inline double run_clients(std::size_t clients,
                          const std::function<void(std::size_t)>& fn) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    const Stopwatch sw;
    for (std::size_t i = 0; i < clients; ++i) {
        threads.emplace_back([&fn, i] { fn(i); });
    }
    for (auto& t : threads) {
        t.join();
    }
    return sw.elapsed_seconds();
}

[[nodiscard]] inline double mbps(std::uint64_t bytes, double seconds) {
    return seconds <= 0.0
               ? 0.0
               : static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds;
}

/// Fixed-width table printer.
class Table {
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers)) {}

    template <typename... Args>
    void row(Args... args) {
        std::vector<std::string> cells;
        (cells.push_back(cell(args)), ...);
        rows_.push_back(std::move(cells));
    }

    void print(const std::string& title) const {
        std::printf("\n== %s ==\n", title.c_str());
        std::vector<std::size_t> width(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            width[c] = headers_[c].size();
            for (const auto& r : rows_) {
                width[c] = std::max(width[c], r.at(c).size());
            }
        }
        print_row(headers_, width);
        std::string sep;
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            sep += std::string(width[c], '-');
            sep += c + 1 < headers_.size() ? "-+-" : "";
        }
        std::printf("%s\n", sep.c_str());
        for (const auto& r : rows_) {
            print_row(r, width);
        }
        std::fflush(stdout);
    }

  private:
    static std::string cell(const char* s) { return s; }
    static std::string cell(const std::string& s) { return s; }
    static std::string cell(double v) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.2f", v);
        return buf;
    }
    template <typename T>
    static std::string cell(T v) {
        return std::to_string(v);
    }

    static void print_row(const std::vector<std::string>& cells,
                          const std::vector<std::size_t>& width) {
        std::string line;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            std::string s = cells[c];
            s.resize(width[c], ' ');
            line += s;
            line += c + 1 < cells.size() ? " | " : "";
        }
        std::printf("%s\n", line.c_str());
    }

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace blobseer::bench
