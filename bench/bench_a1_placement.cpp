/// \file bench_a1_placement.cpp
/// \brief Ablation A1 (paper §I-B.3: "A configurable chunk distribution
///        strategy is employed ... in order to maximize the benefits of
///        data distribution"): how the placement strategy affects write
///        balance and aggregate throughput.
///
/// Two tables:
///   A1a — balance: after a large striped write, the byte imbalance
///         (max/min provider load) per strategy.
///   A1b — throughput under a skewed arrival pattern (some writers issue
///         many more chunks): load-aware placement keeps providers even
///         and sustains higher aggregate write throughput than random.

#include "bench_util.hpp"

namespace {

using namespace blobseer;
using namespace blobseer::bench;

constexpr std::uint64_t kChunk = 64 << 10;

const char* name_of(provider::PlacementStrategy s) {
    return provider::to_string(s);
}

void balance_table() {
    Table table({"strategy", "max/min bytes", "stddev %"});
    for (const auto strategy : {provider::PlacementStrategy::kRoundRobin,
                                provider::PlacementStrategy::kRandom,
                                provider::PlacementStrategy::kLoadAware}) {
        auto cfg = grid_config(12, 6);
        cfg.placement = strategy;
        cfg.network.latency = Duration::zero();
        cfg.network.node_bandwidth_bps = 0;  // balance only; no timing
        core::Cluster cluster(cfg);
        auto client = cluster.make_client();
        core::Blob blob = client->create(kChunk);
        const std::uint64_t total = scaled(240) * kChunk;
        const std::uint64_t stripe = 24 * kChunk;
        for (std::uint64_t off = 0; off < total; off += stripe) {
            client->write(blob.id(), off,
                          make_pattern(blob.id(), off, off, stripe));
        }
        std::uint64_t lo = ~0ULL;
        std::uint64_t hi = 0;
        double sum = 0;
        double sq = 0;
        const std::size_t n = cluster.data_provider_count();
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t b = cluster.data_provider(i).stored_bytes();
            lo = std::min(lo, b);
            hi = std::max(hi, b);
            sum += static_cast<double>(b);
            sq += static_cast<double>(b) * static_cast<double>(b);
        }
        const double mean = sum / static_cast<double>(n);
        const double var = sq / static_cast<double>(n) - mean * mean;
        table.row(name_of(strategy),
                  lo == 0 ? 999.0
                          : static_cast<double>(hi) /
                                static_cast<double>(lo),
                  100.0 * std::sqrt(std::max(var, 0.0)) / mean);
    }
    table.print("A1a: provider load balance after 15 MB striped write");
}

void skewed_throughput() {
    Table table({"strategy", "agg write MB/s", "max/min bytes"});
    const std::size_t clients = 12;
    for (const auto strategy : {provider::PlacementStrategy::kRoundRobin,
                                provider::PlacementStrategy::kRandom,
                                provider::PlacementStrategy::kLoadAware}) {
        auto cfg = grid_config(12, 6);
        cfg.placement = strategy;
        core::Cluster cluster(cfg);
        auto owner = cluster.make_client();
        core::Blob blob = owner->create(kChunk);

        std::vector<std::unique_ptr<core::BlobSeerClient>> cs;
        for (std::size_t i = 0; i < clients; ++i) {
            cs.push_back(cluster.make_client());
        }
        // Skew: client i writes (i+1) stripes — a 12x spread between the
        // lightest and heaviest writer.
        std::uint64_t total_bytes = 0;
        std::vector<std::uint64_t> offsets(clients);
        std::uint64_t cursor = 0;
        for (std::size_t i = 0; i < clients; ++i) {
            offsets[i] = cursor;
            cursor += (i + 1) * scaled(4) * kChunk;
        }
        total_bytes = cursor;
        const double sec = run_clients(clients, [&](std::size_t i) {
            const std::uint64_t bytes = (i + 1) * scaled(4) * kChunk;
            cs[i]->write(blob.id(), offsets[i],
                         make_pattern(blob.id(), i, offsets[i], bytes));
        });
        std::uint64_t lo = ~0ULL;
        std::uint64_t hi = 0;
        for (std::size_t i = 0; i < cluster.data_provider_count(); ++i) {
            const std::uint64_t b = cluster.data_provider(i).stored_bytes();
            lo = std::min(lo, b);
            hi = std::max(hi, b);
        }
        table.row(name_of(strategy), mbps(total_bytes, sec),
                  lo == 0 ? 999.0
                          : static_cast<double>(hi) /
                                static_cast<double>(lo));
    }
    table.print(
        "A1b: skewed concurrent writers (1x..12x load spread), 12 "
        "providers");
}

}  // namespace

int main() {
    balance_table();
    skewed_throughput();
    return 0;
}
