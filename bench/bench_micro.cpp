/// \file bench_micro.cpp
/// \brief google-benchmark micro-benchmarks of the hot substrate paths:
///        hashing, range algebra, the creation-rule predicate, ring
///        lookups, chunk stores, pattern generation, in-memory tree
///        build/read and k-means.

#include <benchmark/benchmark.h>

#include "chunk/ram_store.hpp"
#include "common/buffer.hpp"
#include "common/hash.hpp"
#include "common/random.hpp"
#include "dht/ring.hpp"
#include "meta/meta_store.hpp"
#include "meta/tree_builder.hpp"
#include "meta/tree_reader.hpp"
#include "qos/kmeans.hpp"
#include "version/version_manager.hpp"

namespace {

using namespace blobseer;

void BM_Mix64(benchmark::State& state) {
    std::uint64_t x = 1;
    for (auto _ : state) {
        x = mix64(x);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_Mix64);

void BM_Fnv1a64(benchmark::State& state) {
    const std::string s(static_cast<std::size_t>(state.range(0)), 'x');
    for (auto _ : state) {
        benchmark::DoNotOptimize(fnv1a64(s));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fnv1a64)->Arg(16)->Arg(256);

void BM_CreatesNode(benchmark::State& state) {
    const meta::TreeGeometry geo(64 << 10);
    const meta::WriteDescriptor w{5, 1 << 20, 256 << 10, 64 << 20,
                                  64 << 20};
    const meta::SlotRange r{128, 64};
    for (auto _ : state) {
        benchmark::DoNotOptimize(creates_node(w, r, geo));
    }
}
BENCHMARK(BM_CreatesNode);

void BM_CreatedRanges(benchmark::State& state) {
    const meta::TreeGeometry geo(64 << 10);
    // One-chunk write into a blob of range(0) slots.
    const std::uint64_t slots = static_cast<std::uint64_t>(state.range(0));
    const std::uint64_t size = slots * (64 << 10);
    const meta::WriteDescriptor w{5, size / 2, 64 << 10, size, size};
    for (auto _ : state) {
        benchmark::DoNotOptimize(created_ranges(w, geo));
    }
}
BENCHMARK(BM_CreatedRanges)->Arg(64)->Arg(1024)->Arg(16384);

void BM_RingLookup(benchmark::State& state) {
    dht::Ring ring;
    for (NodeId n = 0; n < static_cast<NodeId>(state.range(0)); ++n) {
        ring.add_node(n);
    }
    std::uint64_t key = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ring.owners(mix64(++key), 3));
    }
}
BENCHMARK(BM_RingLookup)->Arg(4)->Arg(32)->Arg(256);

void BM_RamStorePutGet(benchmark::State& state) {
    chunk::RamStore store;
    const auto data = std::make_shared<Buffer>(
        static_cast<std::size_t>(state.range(0)), 0xAB);
    std::uint64_t uid = 0;
    for (auto _ : state) {
        const chunk::ChunkKey key{1, ++uid};
        store.put(key, data);
        benchmark::DoNotOptimize(store.get(key));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RamStorePutGet)->Arg(4 << 10)->Arg(64 << 10);

void BM_PatternFill(benchmark::State& state) {
    Buffer buf(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        fill_pattern(1, 2, 4096, buf);
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PatternFill)->Arg(4 << 10)->Arg(1 << 20);

void BM_TreeBuildFullWrite(benchmark::State& state) {
    const std::uint64_t chunk = 64 << 10;
    const std::uint64_t slots = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        version::VersionManager vm;
        const auto info = vm.create_blob(chunk, 1);
        meta::InMemoryMetaStore store;
        auto ar = vm.assign(info.id, 0, slots * chunk);
        meta::BuildInput in;
        in.blob = info.id;
        in.chunk_size = chunk;
        in.version = ar.version;
        in.write_range = {0, slots * chunk};
        in.size_before = 0;
        in.size_after = slots * chunk;
        for (std::uint64_t i = 0; i < slots; ++i) {
            in.leaves.push_back(meta::MetaNode::leaf(
                {NodeId{1}}, i, static_cast<std::uint32_t>(chunk)));
        }
        state.ResumeTiming();
        benchmark::DoNotOptimize(build_version_tree(store, in));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(slots));
}
BENCHMARK(BM_TreeBuildFullWrite)->Arg(64)->Arg(1024);

void BM_TreeReadPlan(benchmark::State& state) {
    const std::uint64_t chunk = 64 << 10;
    const std::uint64_t slots = 1024;
    version::VersionManager vm;
    const auto info = vm.create_blob(chunk, 1);
    meta::InMemoryMetaStore store;
    auto ar = vm.assign(info.id, 0, slots * chunk);
    meta::BuildInput in;
    in.blob = info.id;
    in.chunk_size = chunk;
    in.version = ar.version;
    in.write_range = {0, slots * chunk};
    in.size_before = 0;
    in.size_after = slots * chunk;
    for (std::uint64_t i = 0; i < slots; ++i) {
        in.leaves.push_back(meta::MetaNode::leaf(
            {NodeId{1}}, i, static_cast<std::uint32_t>(chunk)));
    }
    build_version_tree(store, in);
    vm.commit(info.id, 1);

    Rng rng(5);
    const std::uint64_t span = 8 * chunk;
    for (auto _ : state) {
        const std::uint64_t off =
            rng.below(slots - 8) * chunk;
        benchmark::DoNotOptimize(meta::plan_read(
            store, info.id, 1, chunk, slots * chunk, {off, span}));
    }
}
BENCHMARK(BM_TreeReadPlan);

void BM_KMeans(benchmark::State& state) {
    Rng rng(3);
    std::vector<qos::FeatureVec> points;
    for (int i = 0; i < 256; ++i) {
        points.push_back({rng.uniform(), rng.uniform(), rng.uniform(),
                          rng.uniform()});
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(qos::kmeans(points, 4, 25, 9));
    }
}
BENCHMARK(BM_KMeans);

}  // namespace

BENCHMARK_MAIN();
