/// \file bench_e5_bsfs_vs_dfs.cpp
/// \brief Experiment E5 (paper §IV-D, results of [16]): BSFS vs an
///        HDFS-like baseline under MapReduce access patterns.
///
/// Three synthetic patterns from the paper's Hadoop study, run against
/// both file systems on identical simulated hardware:
///   (a) N map tasks concurrently reading disjoint regions of one huge
///       input file;
///   (b) N reduce tasks concurrently appending their outputs to one
///       file — BlobSeer's versioned appends proceed in parallel while
///       the HDFS-like lease serializes writers (retry loop);
///   (c) mixed readers + appenders on the same file.
///
/// Expected shape: comparable or better reads, and a widening gap in
/// appends as concurrency grows ("clear benefits of using BlobSeer over
/// Hadoop's original back-end, especially in the case of concurrent
/// accesses to the same huge file").

#include "baseline/simple_dfs.hpp"
#include "bench_util.hpp"
#include "fs/bsfs.hpp"

namespace {

using namespace blobseer;
using namespace blobseer::bench;

constexpr std::uint64_t kBlock = 64 << 10;

struct Deployment {
    std::unique_ptr<core::Cluster> cluster;
    std::unique_ptr<fs::Bsfs> bsfs;
    std::unique_ptr<baseline::SimpleDfs> dfs;

    explicit Deployment(std::uint64_t nn_ops) {
        auto cfg = grid_config(16, 8, nn_ops);
        cluster = std::make_unique<core::Cluster>(cfg);
        bsfs = std::make_unique<fs::Bsfs>(
            *cluster, fs::BsfsConfig{.chunk_size = kBlock,
                                     .replication = {},
                                     .writer_buffer_chunks = 1,
                                     .readahead_chunks = 4});
        dfs = std::make_unique<baseline::SimpleDfs>(
            *cluster, baseline::SimpleDfs::Config{
                          .block_size = kBlock,
                          .replication = 1,
                          .namenode_ops_per_second = nn_ops});
    }
};

/// (a1) streaming: N readers each scanning a disjoint 1 MB region.
void concurrent_reads() {
    Table table({"readers", "BSFS MB/s", "DFS MB/s"});
    const std::uint64_t region = scaled(16) * kBlock;  // 1 MB per reader

    for (const std::size_t readers : {1, 2, 4, 8, 16}) {
        Deployment dep(20'000);
        const std::uint64_t file_size = readers * region;

        // Populate both file systems with the same input file.
        {
            auto w = dep.bsfs->make_client();
            auto writer = w->create("/input");
            writer.write(make_pattern(1, 1, 0, file_size));
            writer.close();
            auto d = dep.dfs->make_client();
            d->create("/input");
            d->append("/input", make_pattern(1, 1, 0, file_size));
            d->close_file("/input");
        }

        std::vector<std::unique_ptr<fs::BsfsClient>> bs;
        std::vector<std::unique_ptr<baseline::SimpleDfsClient>> ds;
        for (std::size_t i = 0; i < readers; ++i) {
            bs.push_back(dep.bsfs->make_client());
            ds.push_back(dep.dfs->make_client());
        }

        const double bsec = run_clients(readers, [&](std::size_t i) {
            auto reader = bs[i]->open("/input");
            Buffer out(region);
            reader.read_at(i * region, out);
        });
        const double dsec = run_clients(readers, [&](std::size_t i) {
            Buffer out(region);
            ds[i]->read("/input", i * region, out);
        });
        table.row(readers, mbps(readers * region, bsec),
                  mbps(readers * region, dsec));
    }
    table.print(
        "E5a1: N map tasks streaming disjoint 1 MB regions of one input "
        "file");
}

/// (a2) record reads: many small random reads of one shared file, with
/// metadata services capacity-matched per node (5000 ops/s each; HDFS
/// has ONE namenode, BlobSeer spreads over 8 DHT nodes). This is where
/// the centralized namenode saturates and the curves cross.
void random_record_reads() {
    Table table({"readers", "BSFS MB/s", "DFS MB/s", "NN ops", "DHT ops"});
    const std::uint64_t record = kBlock;  // 64 KB records
    const std::size_t reads_per_client = scaled(40);

    for (const std::size_t readers : {4, 8, 16, 32}) {
        Deployment dep(5'000);
        const std::uint64_t file_size = 128 * record;
        {
            auto w = dep.bsfs->make_client();
            auto writer = w->create("/records");
            writer.write(make_pattern(4, 4, 0, file_size));
            writer.close();
            auto d = dep.dfs->make_client();
            d->create("/records");
            d->append("/records", make_pattern(4, 4, 0, file_size));
            d->close_file("/records");
        }
        std::vector<std::unique_ptr<fs::BsfsClient>> bs;
        std::vector<std::unique_ptr<baseline::SimpleDfsClient>> ds;
        for (std::size_t i = 0; i < readers; ++i) {
            bs.push_back(dep.bsfs->make_client());
            ds.push_back(dep.dfs->make_client());
        }

        const double bsec = run_clients(readers, [&](std::size_t i) {
            auto reader = bs[i]->open("/records");
            Rng rng(i + 1);
            Buffer out(record);
            for (std::size_t k = 0; k < reads_per_client; ++k) {
                reader.read_at(rng.below(128) * record, out);
            }
        });
        const std::uint64_t nn0 = dep.dfs->namenode().ops();
        const double dsec = run_clients(readers, [&](std::size_t i) {
            Rng rng(i + 1);
            Buffer out(record);
            for (std::size_t k = 0; k < reads_per_client; ++k) {
                ds[i]->read("/records", rng.below(128) * record, out);
            }
        });
        std::uint64_t dht_ops = 0;
        for (std::size_t i = 0;
             i < dep.cluster->metadata_provider_count(); ++i) {
            dht_ops +=
                dep.cluster->metadata_provider(i).stats().ops.get();
        }
        const std::uint64_t bytes = readers * reads_per_client * record;
        table.row(readers, mbps(bytes, bsec), mbps(bytes, dsec),
                  dep.dfs->namenode().ops() - nn0, dht_ops);
    }
    table.print(
        "E5a2: random 64 KB record reads of one shared file "
        "(metadata capacity 5000 ops/s per node: 1 namenode vs 8 DHT "
        "nodes)");
}

/// (b) concurrent appenders to one output file.
void concurrent_appends() {
    Table table({"appenders", "BSFS MB/s", "DFS MB/s", "DFS lease retries"});
    const std::size_t records = scaled(6);
    const std::uint64_t record = 2 * kBlock;  // 128 KB records

    for (const std::size_t appenders : {1, 2, 4, 8, 16}) {
        Deployment dep(20'000);
        {
            auto w = dep.bsfs->make_client();
            w->create("/out").close();
            auto d = dep.dfs->make_client();
            d->create("/out");
            d->close_file("/out");
        }
        std::vector<std::unique_ptr<fs::BsfsClient>> bs;
        std::vector<std::unique_ptr<baseline::SimpleDfsClient>> ds;
        for (std::size_t i = 0; i < appenders; ++i) {
            bs.push_back(dep.bsfs->make_client());
            ds.push_back(dep.dfs->make_client());
        }

        const double bsec = run_clients(appenders, [&](std::size_t i) {
            auto writer = bs[i]->open_append("/out");
            for (std::size_t r = 0; r < records; ++r) {
                writer.write(make_pattern(2, i * 100 + r, 0, record));
                writer.flush();
            }
            writer.close();
        });

        std::atomic<std::uint64_t> retries{0};
        const double dsec = run_clients(appenders, [&](std::size_t i) {
            for (std::size_t r = 0; r < records; ++r) {
                // HDFS semantics: appending needs the exclusive lease;
                // contenders fail and retry with backoff.
                for (;;) {
                    try {
                        ds[i]->append_open("/out");
                        break;
                    } catch (const baseline::LeaseHeld&) {
                        retries.fetch_add(1);
                        std::this_thread::sleep_for(milliseconds(1));
                    }
                }
                ds[i]->append("/out", make_pattern(2, i * 100 + r, 0,
                                                   record));
                ds[i]->close_file("/out");
            }
        });
        const std::uint64_t total = appenders * records * record;
        table.row(appenders, mbps(total, bsec), mbps(total, dsec),
                  retries.load());
    }
    table.print(
        "E5b: N reduce tasks appending 128 KB records to one output "
        "file");
}

/// (c) mixed readers and appenders on one file.
void mixed_workload() {
    Table table({"readers+appenders", "BSFS MB/s", "DFS MB/s"});
    const std::uint64_t piece = 2 * kBlock;
    const std::size_t ops = scaled(6);

    for (const std::size_t half : {1, 2, 4, 8}) {
        Deployment dep(20'000);
        const std::uint64_t preload = 16 * piece;
        {
            auto w = dep.bsfs->make_client();
            auto writer = w->create("/mix");
            writer.write(make_pattern(3, 0, 0, preload));
            writer.close();
            auto d = dep.dfs->make_client();
            d->create("/mix");
            d->append("/mix", make_pattern(3, 0, 0, preload));
            d->close_file("/mix");
        }
        const std::size_t total_clients = 2 * half;
        std::vector<std::unique_ptr<fs::BsfsClient>> bs;
        std::vector<std::unique_ptr<baseline::SimpleDfsClient>> ds;
        for (std::size_t i = 0; i < total_clients; ++i) {
            bs.push_back(dep.bsfs->make_client());
            ds.push_back(dep.dfs->make_client());
        }

        std::atomic<std::uint64_t> bbytes{0};
        const double bsec = run_clients(total_clients, [&](std::size_t i) {
            if (i % 2 == 0) {  // reader
                Buffer out(piece);
                Rng rng(i);
                for (std::size_t k = 0; k < ops; ++k) {
                    const std::uint64_t tile = rng.below(preload / piece);
                    auto reader = bs[i]->open("/mix");
                    reader.read_at(tile * piece, out);
                    bbytes.fetch_add(out.size());
                }
            } else {  // appender
                auto writer = bs[i]->open_append("/mix");
                for (std::size_t k = 0; k < ops; ++k) {
                    writer.write(make_pattern(3, i * 100 + k, 0, piece));
                    writer.flush();
                    bbytes.fetch_add(piece);
                }
                writer.close();
            }
        });

        std::atomic<std::uint64_t> dbytes{0};
        const double dsec = run_clients(total_clients, [&](std::size_t i) {
            if (i % 2 == 0) {
                Buffer out(piece);
                Rng rng(i);
                for (std::size_t k = 0; k < ops; ++k) {
                    const std::uint64_t tile = rng.below(preload / piece);
                    ds[i]->read("/mix", tile * piece, out);
                    dbytes.fetch_add(out.size());
                }
            } else {
                for (std::size_t k = 0; k < ops; ++k) {
                    for (;;) {
                        try {
                            ds[i]->append_open("/mix");
                            break;
                        } catch (const baseline::LeaseHeld&) {
                            std::this_thread::sleep_for(milliseconds(1));
                        }
                    }
                    ds[i]->append("/mix",
                                  make_pattern(3, i * 100 + k, 0, piece));
                    ds[i]->close_file("/mix");
                }
            }
        });
        table.row(std::to_string(half) + "+" + std::to_string(half),
                  mbps(bbytes.load(), bsec), mbps(dbytes.load(), dsec));
    }
    table.print("E5c: mixed random readers + appenders on one file");
}

}  // namespace

int main() {
    concurrent_reads();
    random_record_reads();
    concurrent_appends();
    mixed_workload();
    return 0;
}
