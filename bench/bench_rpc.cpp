/// \file bench_rpc.cpp
/// \brief RPC-stack microbenchmark: direct call vs. SimTransport vs.
///        TCP loopback.
///
/// Quantifies what each layer of the new wire protocol costs:
///
///  * direct — invoke the service object, no serialization (the seed's
///    original call path, kept as the floor);
///  * sim    — full encode → dispatch → decode round trip through
///    SimTransport with a zero-cost simulated wire (codec + dispatch
///    overhead);
///  * tcp    — the same frames over real loopback sockets against an
///    in-process TcpRpcServer (adds syscalls and TCP).
///
/// Three workloads: a small control RPC (get-version, ~60-byte frames),
/// a 64 KiB chunk put+get pair, and an in-flight window sweep — 1/8/64
/// outstanding get_chunk requests over ONE multiplexed TCP connection
/// (window 1 is exactly the old serial one-request-per-connection
/// behavior, so the sweep quantifies what protocol v3 multiplexing
/// buys). Reported: throughput, mean and p99 latency, speedup.
///
///   $ BLOBSEER_BENCH_SCALE=0.25 ./bench_rpc   # quick smoke run

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "common/metrics.hpp"
#include "rpc/service_client.hpp"
#include "rpc/sim_transport.hpp"
#include "rpc/tcp_transport.hpp"

using namespace blobseer;

namespace {

struct RunStats {
    double ops_per_s = 0;
    double mean_us = 0;
    double p99_us = 0;
    double mb_per_s = 0;  ///< payload throughput (chunk workload only)
};

/// Blocking loopback connect (no framing: used for parked idle
/// connections in the connection sweep).
int connect_loopback(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

std::size_t open_fd_count() {
    std::size_t n = 0;
    for ([[maybe_unused]] const auto& e :
         std::filesystem::directory_iterator("/proc/self/fd")) {
        ++n;
    }
    return n;
}

RunStats timed_loop(std::size_t n, std::uint64_t payload_bytes,
                    const std::function<void()>& op) {
    std::vector<std::uint64_t> lat_us;
    lat_us.reserve(n);
    const Stopwatch total;
    for (std::size_t i = 0; i < n; ++i) {
        const Stopwatch sw;
        op();
        lat_us.push_back(sw.elapsed_us());
    }
    const double secs = total.elapsed_seconds();
    std::sort(lat_us.begin(), lat_us.end());
    RunStats s;
    s.ops_per_s = static_cast<double>(n) / secs;
    std::uint64_t sum = 0;
    for (const std::uint64_t v : lat_us) {
        sum += v;
    }
    s.mean_us = static_cast<double>(sum) / static_cast<double>(n);
    s.p99_us = static_cast<double>(lat_us[(n * 99) / 100]);
    s.mb_per_s = static_cast<double>(n) * static_cast<double>(payload_bytes) /
                 secs / (1 << 20);
    return s;
}

}  // namespace

int main() {
    core::ClusterConfig cfg;
    cfg.data_providers = 4;
    cfg.metadata_providers = 2;
    cfg.default_replication = 1;
    // Zero-cost simulated wire: the difference between modes is pure
    // protocol overhead, not modeled bandwidth.
    cfg.network.latency = Duration::zero();
    cfg.network.node_bandwidth_bps = 0;
    core::Cluster cluster(cfg);

    // One published version to query, one stored chunk to re-fetch.
    auto client = cluster.make_client("bench");
    auto blob = client->create(64 << 10);
    const Buffer payload = make_pattern(blob.id(), 1, 0, 64 << 10);
    blob.write(0, payload);

    const NodeId bench_node = cluster.network().add_node("bench-rpc");
    rpc::SimTransport sim(cluster.network(), bench_node,
                          cluster.dispatcher());
    rpc::TcpRpcServer server(cluster.dispatcher(), 0, "127.0.0.1");
    rpc::TcpTransport tcp("127.0.0.1", server.port());

    rpc::ServiceClient sim_svc(sim, cluster.version_manager_nodes(),
                               cluster.provider_manager_node());
    rpc::ServiceClient tcp_svc(tcp, cluster.version_manager_nodes(),
                               cluster.provider_manager_node());

    const std::size_t n_small = bench::scaled(20000);
    const std::size_t n_chunk = bench::scaled(1500);
    const BlobId id = blob.id();
    auto& vm = cluster.version_manager();
    auto& dp = cluster.data_provider(0);
    const NodeId dp_node = dp.node();

    // -- small control RPC ---------------------------------------------------
    bench::Table small({"mode", "ops/s", "mean us", "p99 us"});
    const auto run_small = [&](const char* mode,
                               const std::function<void()>& op) {
        const RunStats s = timed_loop(n_small, 0, op);
        small.row(mode, s.ops_per_s, s.mean_us, s.p99_us);
    };
    run_small("direct", [&] { (void)vm.get_version(id, kLatestVersion); });
    run_small("sim", [&] { (void)sim_svc.get_version(id, kLatestVersion); });
    run_small("tcp", [&] { (void)tcp_svc.get_version(id, kLatestVersion); });
    small.print("get-version RPC (" + std::to_string(n_small) + " ops)");

    // -- 64 KiB chunk put+get ------------------------------------------------
    bench::Table chunks({"mode", "pairs/s", "MB/s", "mean us", "p99 us"});
    std::uint64_t uid = 1u << 20;
    const auto run_chunk = [&](const char* mode,
                               const std::function<void()>& op) {
        const RunStats s = timed_loop(n_chunk, 2 * payload.size(), op);
        chunks.row(mode, s.ops_per_s, s.mb_per_s, s.mean_us, s.p99_us);
    };
    run_chunk("direct", [&] {
        const chunk::ChunkKey key{id, uid++};
        dp.put_chunk(key, std::make_shared<const Buffer>(payload));
        (void)dp.get_chunk(key);
    });
    run_chunk("sim", [&] {
        const chunk::ChunkKey key{id, uid++};
        sim_svc.put_chunk(dp_node, key, payload);
        (void)sim_svc.get_chunk(dp_node, key, 0, 0);
    });
    run_chunk("tcp", [&] {
        const chunk::ChunkKey key{id, uid++};
        tcp_svc.put_chunk(dp_node, key, payload);
        (void)tcp_svc.get_chunk(dp_node, key, 0, 0);
    });
    chunks.print("64 KiB chunk put+get (" + std::to_string(n_chunk) +
                 " pairs)");

    // -- in-flight window sweep over one multiplexed TCP connection ----------
    //
    // One stored chunk is fetched n times with a bounded number of
    // get_chunk requests outstanding, all on the single connection the
    // transport multiplexes to the server. window=1 reproduces the old
    // serial wire (each request waits for its response); deeper windows
    // overlap requests, server dispatch and responses. Two chunk sizes
    // bracket the regimes: 4 KiB is round-trip-latency-bound (where
    // multiplexing is the win), 64 KiB is loopback-bandwidth-bound —
    // the serial wire already streams near line rate there, and a deep
    // window only adds buffer churn (use modest windows for bulk
    // transfers on few-core hosts). The sweep server gets 2 dispatch
    // workers: enough to overlap request parse with response write,
    // without preemption noise on small machines.
    rpc::TcpRpcServer sweep_server(cluster.dispatcher(), 0, "127.0.0.1",
                                   2);
    rpc::TcpTransport sweep_tcp("127.0.0.1", sweep_server.port());
    rpc::ServiceClient sweep_svc(sweep_tcp,
                                 cluster.version_manager_nodes(),
                                 cluster.provider_manager_node());
    struct SweepCase {
        const char* label;
        std::size_t stored_bytes;  ///< chunk stored on the provider
        std::size_t slice_bytes;   ///< bytes fetched per get (0 = all)
        std::size_t n;
    };
    const SweepCase cases[] = {
        // Fine-grained slice reads (the paper's fine-grain access
        // pattern): latency-bound, where multiplexing pays most.
        {"512 B slices of a 64 KiB chunk", 64 << 10, 512,
         bench::scaled(20000)},
        {"4 KiB whole-chunk gets", 4 << 10, 0, bench::scaled(20000)},
        {"64 KiB whole-chunk gets", 64 << 10, 0, bench::scaled(4000)},
    };
    for (const SweepCase& c : cases) {
        const chunk::ChunkKey sweep_key{id, uid++};
        const Buffer sweep_payload = make_pattern(id, 9, 0, c.stored_bytes);
        sweep_svc.put_chunk(dp_node, sweep_key, sweep_payload);
        const std::size_t expect =
            c.slice_bytes == 0 ? c.stored_bytes : c.slice_bytes;

        bench::Table sweep({"window", "ops/s", "MB/s", "speedup"});
        double serial_ops = 0;
        for (const std::size_t window : {std::size_t{1}, std::size_t{8},
                                         std::size_t{64}}) {
            const Stopwatch sw;
            std::deque<Future<rpc::ServiceClient::ChunkSlice>> inflight;
            for (std::size_t i = 0; i < c.n; ++i) {
                if (inflight.size() == window) {
                    if (inflight.front().get().bytes.size() != expect) {
                        std::fprintf(stderr,
                                     "sweep: short chunk readback\n");
                        return 1;
                    }
                    inflight.pop_front();
                }
                inflight.push_back(sweep_svc.get_chunk_async(
                    dp_node, sweep_key, 0, c.slice_bytes));
            }
            while (!inflight.empty()) {
                (void)inflight.front().get();
                inflight.pop_front();
            }
            const double secs = sw.elapsed_seconds();
            const double ops = static_cast<double>(c.n) / secs;
            if (window == 1) {
                serial_ops = ops;
            }
            sweep.row(std::to_string(window).c_str(), ops,
                      static_cast<double>(c.n) *
                          static_cast<double>(expect) / secs / (1 << 20),
                      ops / serial_ops);
        }
        sweep.print(std::string(c.label) +
                    ", in-flight window over one TCP connection (" +
                    std::to_string(c.n) +
                    " ops; window 1 = old serial wire)");
    }

    // -- bytes copied per 64 KiB get_chunk: zero-copy on vs. off -------------
    //
    // rpc_bytes_copied_total counts payload bytes flattened into the
    // response buffer; the scatter-gather path ships the store's bytes
    // by reference and never touches the counter. The per-read diff is
    // the direct measure of what the zero-copy read path removes.
    {
        Counter& copied = MetricsRegistry::instance().counter(
            "rpc_bytes_copied_total", {});
        const std::size_t n_zc = bench::scaled(2000);
        const chunk::ChunkKey zc_key{id, uid++};
        const Buffer zc_payload = make_pattern(id, 11, 0, 64 << 10);
        bench::Table zc(
            {"mode", "reads", "bytes copied", "copied/read", "MB/s"});
        for (const bool zero_copy : {false, true}) {
            rpc::TcpRpcServer::Options o;
            o.bind_addr = "127.0.0.1";
            o.zero_copy = zero_copy;
            rpc::TcpRpcServer zc_server(cluster.dispatcher(),
                                        std::move(o));
            rpc::TcpTransport zc_tcp("127.0.0.1", zc_server.port());
            rpc::ServiceClient zc_svc(zc_tcp,
                                      cluster.version_manager_nodes(),
                                      cluster.provider_manager_node());
            if (!zero_copy) {  // first pass: store the chunk once
                zc_svc.put_chunk(dp_node, zc_key, zc_payload);
            }
            const std::uint64_t before = copied.get();
            const Stopwatch sw;
            std::deque<Future<rpc::ServiceClient::ChunkSlice>> inflight;
            for (std::size_t i = 0; i < n_zc; ++i) {
                if (inflight.size() == 16) {
                    if (inflight.front().get().bytes !=
                        zc_payload) {
                        std::fprintf(stderr, "zc: bad readback\n");
                        return 1;
                    }
                    inflight.pop_front();
                }
                inflight.push_back(
                    zc_svc.get_chunk_async(dp_node, zc_key, 0, 0));
            }
            while (!inflight.empty()) {
                (void)inflight.front().get();
                inflight.pop_front();
            }
            const double secs = sw.elapsed_seconds();
            const std::uint64_t delta = copied.get() - before;
            zc.row(zero_copy ? "zero-copy" : "flatten", n_zc, delta,
                   static_cast<double>(delta) /
                       static_cast<double>(n_zc),
                   static_cast<double>(n_zc) *
                       static_cast<double>(zc_payload.size()) / secs /
                       (1 << 20));
        }
        zc.print("64 KiB get_chunk response copies "
                 "(rpc_bytes_copied_total diff)");
    }

    // -- connection sweep: a parked crowd on fixed io threads ----------------
    //
    // 1k+ idle connections cost the reactor fds, not threads; active
    // clients keep full throughput through the crowd; the idle-timeout
    // sweep then reaps every parked connection (fd-count verified).
    {
        rlimit rl{};
        if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < 8192) {
            rlimit want = rl;
            want.rlim_cur = std::min<rlim_t>(8192, rl.rlim_max);
            if (::setrlimit(RLIMIT_NOFILE, &want) == 0) {
                rl = want;
            }
        }
        const std::size_t baseline_fds = open_fd_count();
        // Both endpoints of every loopback connection live in this
        // process: 2 fds each, plus headroom for the active clients.
        std::size_t idle_target = bench::scaled(1024);
        if (rl.rlim_cur > baseline_fds + 256) {
            idle_target = std::min<std::size_t>(
                idle_target, (rl.rlim_cur - baseline_fds - 256) / 2);
        } else {
            idle_target = std::min<std::size_t>(idle_target, 64);
        }

        rpc::TcpRpcServer::Options copt;
        copt.bind_addr = "127.0.0.1";
        copt.io_threads = 2;
        copt.idle_timeout_ms = 3000;
        rpc::TcpRpcServer conn_server(cluster.dispatcher(),
                                      std::move(copt));

        std::vector<int> idle;
        idle.reserve(idle_target);
        for (std::size_t i = 0; i < idle_target; ++i) {
            const int fd = connect_loopback(conn_server.port());
            if (fd < 0) {
                break;
            }
            idle.push_back(fd);
        }
        const Stopwatch accept_sw;
        while (conn_server.connection_count() < idle.size() &&
               accept_sw.elapsed_seconds() < 10.0) {
            std::this_thread::sleep_for(milliseconds(5));
        }
        if (conn_server.connection_count() < idle.size()) {
            std::fprintf(stderr, "sweep: only %zu/%zu connections up\n",
                         conn_server.connection_count(), idle.size());
            return 1;
        }
        const std::size_t fds_parked = open_fd_count();

        // Active traffic through the parked crowd.
        const chunk::ChunkKey conn_key{id, uid++};
        const Buffer conn_payload = make_pattern(id, 13, 0, 64 << 10);
        {
            rpc::TcpTransport seed_tcp("127.0.0.1", conn_server.port());
            rpc::ServiceClient seed_svc(
                seed_tcp, cluster.version_manager_nodes(),
                cluster.provider_manager_node());
            seed_svc.put_chunk(dp_node, conn_key, conn_payload);
        }
        const std::size_t active_clients = 8;
        const std::size_t per_client = bench::scaled(400);
        std::atomic<bool> failed{false};
        const double secs = bench::run_clients(
            active_clients, [&](std::size_t) {
                rpc::TcpTransport t("127.0.0.1", conn_server.port());
                rpc::ServiceClient svc(
                    t, cluster.version_manager_nodes(),
                    cluster.provider_manager_node());
                std::deque<Future<rpc::ServiceClient::ChunkSlice>> fl;
                for (std::size_t i = 0; i < per_client; ++i) {
                    if (fl.size() == 8) {
                        if (fl.front().get().bytes.size() !=
                            conn_payload.size()) {
                            failed.store(true);
                            return;
                        }
                        fl.pop_front();
                    }
                    fl.push_back(svc.get_chunk_async(dp_node, conn_key,
                                                     0, 0));
                }
                while (!fl.empty()) {
                    (void)fl.front().get();
                    fl.pop_front();
                }
            });
        if (failed.load()) {
            std::fprintf(stderr, "sweep: short readback under load\n");
            return 1;
        }
        const std::uint64_t reads = active_clients * per_client;

        bench::Table conns({"idle conns", "io threads", "open fds",
                            "reads/s", "MB/s"});
        conns.row(idle.size(), std::size_t{2}, fds_parked,
                  static_cast<double>(reads) / secs,
                  static_cast<double>(reads) *
                      static_cast<double>(conn_payload.size()) / secs /
                      (1 << 20));
        conns.print("64 KiB reads through " +
                    std::to_string(idle.size()) +
                    " parked idle connections (8 clients, window 8)");

        // Idle reaping: every parked connection must be closed by the
        // sweep, surfacing EOF client-side, and the server fd count
        // must fall back to the baseline.
        const Stopwatch reap_sw;
        while (conn_server.connection_count() > 0 &&
               reap_sw.elapsed_seconds() < 20.0) {
            std::this_thread::sleep_for(milliseconds(20));
        }
        if (conn_server.connection_count() != 0) {
            std::fprintf(stderr, "sweep: %zu connections not reaped\n",
                         conn_server.connection_count());
            return 1;
        }
        char b = 0;
        if (::recv(idle.front(), &b, 1, 0) != 0) {
            std::fprintf(stderr, "sweep: no EOF on a reaped conn\n");
            return 1;
        }
        for (const int fd : idle) {
            ::close(fd);
        }
        // Give the loops one beat to settle retired handlers (the
        // server-side fds close when those release their last refs).
        std::this_thread::sleep_for(milliseconds(100));
        const std::size_t fds_after = open_fd_count();
        if (fds_after > baseline_fds + 16) {
            std::fprintf(stderr, "sweep: fd leak (%zu -> %zu)\n",
                         baseline_fds, fds_after);
            return 1;
        }
        std::printf("\nidle sweep: %zu connections reaped in %.1fs; "
                    "fds %zu -> %zu -> %zu\n",
                    idle.size(), reap_sw.elapsed_seconds(),
                    baseline_fds, fds_parked, fds_after);
    }

    return 0;
}
