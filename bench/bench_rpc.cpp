/// \file bench_rpc.cpp
/// \brief RPC-stack microbenchmark: direct call vs. SimTransport vs.
///        TCP loopback.
///
/// Quantifies what each layer of the new wire protocol costs:
///
///  * direct — invoke the service object, no serialization (the seed's
///    original call path, kept as the floor);
///  * sim    — full encode → dispatch → decode round trip through
///    SimTransport with a zero-cost simulated wire (codec + dispatch
///    overhead);
///  * tcp    — the same frames over real loopback sockets against an
///    in-process TcpRpcServer (adds syscalls and TCP).
///
/// Three workloads: a small control RPC (get-version, ~60-byte frames),
/// a 64 KiB chunk put+get pair, and an in-flight window sweep — 1/8/64
/// outstanding get_chunk requests over ONE multiplexed TCP connection
/// (window 1 is exactly the old serial one-request-per-connection
/// behavior, so the sweep quantifies what protocol v3 multiplexing
/// buys). Reported: throughput, mean and p99 latency, speedup.
///
///   $ BLOBSEER_BENCH_SCALE=0.25 ./bench_rpc   # quick smoke run

#include <algorithm>
#include <cstdio>
#include <deque>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "rpc/service_client.hpp"
#include "rpc/sim_transport.hpp"
#include "rpc/tcp_transport.hpp"

using namespace blobseer;

namespace {

struct RunStats {
    double ops_per_s = 0;
    double mean_us = 0;
    double p99_us = 0;
    double mb_per_s = 0;  ///< payload throughput (chunk workload only)
};

RunStats timed_loop(std::size_t n, std::uint64_t payload_bytes,
                    const std::function<void()>& op) {
    std::vector<std::uint64_t> lat_us;
    lat_us.reserve(n);
    const Stopwatch total;
    for (std::size_t i = 0; i < n; ++i) {
        const Stopwatch sw;
        op();
        lat_us.push_back(sw.elapsed_us());
    }
    const double secs = total.elapsed_seconds();
    std::sort(lat_us.begin(), lat_us.end());
    RunStats s;
    s.ops_per_s = static_cast<double>(n) / secs;
    std::uint64_t sum = 0;
    for (const std::uint64_t v : lat_us) {
        sum += v;
    }
    s.mean_us = static_cast<double>(sum) / static_cast<double>(n);
    s.p99_us = static_cast<double>(lat_us[(n * 99) / 100]);
    s.mb_per_s = static_cast<double>(n) * static_cast<double>(payload_bytes) /
                 secs / (1 << 20);
    return s;
}

}  // namespace

int main() {
    core::ClusterConfig cfg;
    cfg.data_providers = 4;
    cfg.metadata_providers = 2;
    cfg.default_replication = 1;
    // Zero-cost simulated wire: the difference between modes is pure
    // protocol overhead, not modeled bandwidth.
    cfg.network.latency = Duration::zero();
    cfg.network.node_bandwidth_bps = 0;
    core::Cluster cluster(cfg);

    // One published version to query, one stored chunk to re-fetch.
    auto client = cluster.make_client("bench");
    auto blob = client->create(64 << 10);
    const Buffer payload = make_pattern(blob.id(), 1, 0, 64 << 10);
    blob.write(0, payload);

    const NodeId bench_node = cluster.network().add_node("bench-rpc");
    rpc::SimTransport sim(cluster.network(), bench_node,
                          cluster.dispatcher());
    rpc::TcpRpcServer server(cluster.dispatcher(), 0, "127.0.0.1");
    rpc::TcpTransport tcp("127.0.0.1", server.port());

    rpc::ServiceClient sim_svc(sim, cluster.version_manager_nodes(),
                               cluster.provider_manager_node());
    rpc::ServiceClient tcp_svc(tcp, cluster.version_manager_nodes(),
                               cluster.provider_manager_node());

    const std::size_t n_small = bench::scaled(20000);
    const std::size_t n_chunk = bench::scaled(1500);
    const BlobId id = blob.id();
    auto& vm = cluster.version_manager();
    auto& dp = cluster.data_provider(0);
    const NodeId dp_node = dp.node();

    // -- small control RPC ---------------------------------------------------
    bench::Table small({"mode", "ops/s", "mean us", "p99 us"});
    const auto run_small = [&](const char* mode,
                               const std::function<void()>& op) {
        const RunStats s = timed_loop(n_small, 0, op);
        small.row(mode, s.ops_per_s, s.mean_us, s.p99_us);
    };
    run_small("direct", [&] { (void)vm.get_version(id, kLatestVersion); });
    run_small("sim", [&] { (void)sim_svc.get_version(id, kLatestVersion); });
    run_small("tcp", [&] { (void)tcp_svc.get_version(id, kLatestVersion); });
    small.print("get-version RPC (" + std::to_string(n_small) + " ops)");

    // -- 64 KiB chunk put+get ------------------------------------------------
    bench::Table chunks({"mode", "pairs/s", "MB/s", "mean us", "p99 us"});
    std::uint64_t uid = 1u << 20;
    const auto run_chunk = [&](const char* mode,
                               const std::function<void()>& op) {
        const RunStats s = timed_loop(n_chunk, 2 * payload.size(), op);
        chunks.row(mode, s.ops_per_s, s.mb_per_s, s.mean_us, s.p99_us);
    };
    run_chunk("direct", [&] {
        const chunk::ChunkKey key{id, uid++};
        dp.put_chunk(key, std::make_shared<const Buffer>(payload));
        (void)dp.get_chunk(key);
    });
    run_chunk("sim", [&] {
        const chunk::ChunkKey key{id, uid++};
        sim_svc.put_chunk(dp_node, key, payload);
        (void)sim_svc.get_chunk(dp_node, key, 0, 0);
    });
    run_chunk("tcp", [&] {
        const chunk::ChunkKey key{id, uid++};
        tcp_svc.put_chunk(dp_node, key, payload);
        (void)tcp_svc.get_chunk(dp_node, key, 0, 0);
    });
    chunks.print("64 KiB chunk put+get (" + std::to_string(n_chunk) +
                 " pairs)");

    // -- in-flight window sweep over one multiplexed TCP connection ----------
    //
    // One stored chunk is fetched n times with a bounded number of
    // get_chunk requests outstanding, all on the single connection the
    // transport multiplexes to the server. window=1 reproduces the old
    // serial wire (each request waits for its response); deeper windows
    // overlap requests, server dispatch and responses. Two chunk sizes
    // bracket the regimes: 4 KiB is round-trip-latency-bound (where
    // multiplexing is the win), 64 KiB is loopback-bandwidth-bound —
    // the serial wire already streams near line rate there, and a deep
    // window only adds buffer churn (use modest windows for bulk
    // transfers on few-core hosts). The sweep server gets 2 dispatch
    // workers: enough to overlap request parse with response write,
    // without preemption noise on small machines.
    rpc::TcpRpcServer sweep_server(cluster.dispatcher(), 0, "127.0.0.1",
                                   2);
    rpc::TcpTransport sweep_tcp("127.0.0.1", sweep_server.port());
    rpc::ServiceClient sweep_svc(sweep_tcp,
                                 cluster.version_manager_nodes(),
                                 cluster.provider_manager_node());
    struct SweepCase {
        const char* label;
        std::size_t stored_bytes;  ///< chunk stored on the provider
        std::size_t slice_bytes;   ///< bytes fetched per get (0 = all)
        std::size_t n;
    };
    const SweepCase cases[] = {
        // Fine-grained slice reads (the paper's fine-grain access
        // pattern): latency-bound, where multiplexing pays most.
        {"512 B slices of a 64 KiB chunk", 64 << 10, 512,
         bench::scaled(20000)},
        {"4 KiB whole-chunk gets", 4 << 10, 0, bench::scaled(20000)},
        {"64 KiB whole-chunk gets", 64 << 10, 0, bench::scaled(4000)},
    };
    for (const SweepCase& c : cases) {
        const chunk::ChunkKey sweep_key{id, uid++};
        const Buffer sweep_payload = make_pattern(id, 9, 0, c.stored_bytes);
        sweep_svc.put_chunk(dp_node, sweep_key, sweep_payload);
        const std::size_t expect =
            c.slice_bytes == 0 ? c.stored_bytes : c.slice_bytes;

        bench::Table sweep({"window", "ops/s", "MB/s", "speedup"});
        double serial_ops = 0;
        for (const std::size_t window : {std::size_t{1}, std::size_t{8},
                                         std::size_t{64}}) {
            const Stopwatch sw;
            std::deque<Future<rpc::ServiceClient::ChunkSlice>> inflight;
            for (std::size_t i = 0; i < c.n; ++i) {
                if (inflight.size() == window) {
                    if (inflight.front().get().bytes.size() != expect) {
                        std::fprintf(stderr,
                                     "sweep: short chunk readback\n");
                        return 1;
                    }
                    inflight.pop_front();
                }
                inflight.push_back(sweep_svc.get_chunk_async(
                    dp_node, sweep_key, 0, c.slice_bytes));
            }
            while (!inflight.empty()) {
                (void)inflight.front().get();
                inflight.pop_front();
            }
            const double secs = sw.elapsed_seconds();
            const double ops = static_cast<double>(c.n) / secs;
            if (window == 1) {
                serial_ops = ops;
            }
            sweep.row(std::to_string(window).c_str(), ops,
                      static_cast<double>(c.n) *
                          static_cast<double>(expect) / secs / (1 << 20),
                      ops / serial_ops);
        }
        sweep.print(std::string(c.label) +
                    ", in-flight window over one TCP connection (" +
                    std::to_string(c.n) +
                    " ops; window 1 = old serial wire)");
    }

    return 0;
}
