/// \file bench_e7_versioning.cpp
/// \brief Experiment E7 (ablations of the design choices in §I-B.3):
///        versioning internals.
///
///   A. Read cost vs snapshot age — immutable trees mean reading an old
///      version costs the same as reading the newest.
///   B. Chunk-size sweep — tree depth, metadata nodes created, and the
///      metadata/data overhead ratio for a fixed blob size.
///   C. Metadata nodes created per write vs write size (O(log n +
///      chunks) growth).
///   D. CLONE is O(1): clone latency vs blob size stays flat.
///   E. VM sharding: aggregate publish throughput of 8 writers on
///      distinct blobs vs version-manager shard count. With durable
///      per-shard journals the serialized step is the journal append;
///      shards multiply it.

#include <filesystem>
#include <memory>

#include <unistd.h>

#include "bench_util.hpp"
#include "engine/log_engine.hpp"
#include "meta/write_descriptor.hpp"
#include "version/version_manager.hpp"

namespace {

using namespace blobseer;
using namespace blobseer::bench;

void read_vs_age() {
    constexpr std::uint64_t kChunk = 64 << 10;
    auto cfg = grid_config(8, 4);
    core::Cluster cluster(cfg);
    auto owner = cluster.make_client();
    core::Blob blob = owner->create(kChunk);

    const std::uint64_t size = 64 * kChunk;
    owner->write(blob.id(), 0, make_pattern(blob.id(), 0, 0, size));
    const std::size_t versions = scaled(100);
    Rng rng(7);
    for (std::size_t v = 0; v < versions; ++v) {
        const std::uint64_t slot = rng.below(64);
        owner->write(blob.id(), slot * kChunk,
                     make_pattern(blob.id(), v, 0, kChunk));
    }
    const Version latest = owner->stat(blob.id()).version;

    Table table({"version read", "ms/read", "meta RPCs"});
    for (const double frac : {0.01, 0.25, 0.5, 0.75, 1.0}) {
        const auto v = std::max<Version>(
            1, static_cast<Version>(frac * static_cast<double>(latest)));
        // Fresh client per row: cold metadata cache, so the full descent
        // cost is visible.
        auto reader = cluster.make_client();
        std::uint64_t gets0 = 0;
        for (std::size_t i = 0; i < cluster.metadata_provider_count(); ++i) {
            gets0 += cluster.metadata_provider(i).stats().ops.get();
        }
        Buffer out(8 * kChunk);
        const Stopwatch sw;
        const int reps = 5;
        for (int r = 0; r < reps; ++r) {
            reader->read(blob.id(), v, (r % 8) * 8 * kChunk, out);
        }
        std::uint64_t gets1 = 0;
        for (std::size_t i = 0; i < cluster.metadata_provider_count(); ++i) {
            gets1 += cluster.metadata_provider(i).stats().ops.get();
        }
        table.row("v" + std::to_string(v),
                  sw.elapsed_seconds() * 1000.0 / reps,
                  (gets1 - gets0) / reps);
    }
    table.print(
        "E7a: read cost vs snapshot age (immutable trees: flat line "
        "expected)");
}

void chunk_size_sweep() {
    const std::uint64_t blob_size = 16 << 20;
    Table table({"chunk KB", "tree depth", "nodes full write",
                 "nodes 1-chunk write", "meta bytes/MB data"});
    for (const std::uint64_t chunk_kb : {16, 64, 256, 1024}) {
        const std::uint64_t c = chunk_kb << 10;
        const meta::TreeGeometry geo(c);
        const std::uint64_t slots = geo.tree_slots(blob_size);
        std::size_t depth = 0;
        for (std::uint64_t s = slots; s > 1; s /= 2) {
            ++depth;
        }
        const meta::WriteDescriptor full{1, 0, blob_size, 0, blob_size};
        const auto full_nodes = created_ranges(full, geo).size();
        const meta::WriteDescriptor one{2, blob_size / 2, c, blob_size,
                                        blob_size};
        const auto one_nodes = created_ranges(one, geo).size();
        // ~40 wire bytes per node (see MetaNode::serialized_size).
        const double meta_bytes_per_mb =
            static_cast<double>(full_nodes) * 40.0 /
            (static_cast<double>(blob_size) / (1 << 20));
        table.row(chunk_kb, depth, full_nodes, one_nodes,
                  meta_bytes_per_mb);
    }
    table.print("E7b: chunk size vs tree geometry (16 MB blob)");
}

void nodes_per_write() {
    const std::uint64_t c = 64 << 10;
    const meta::TreeGeometry geo(c);
    const std::uint64_t blob_size = 64 << 20;  // 1024 slots
    Table table({"write chunks", "nodes created", "theory 2k-1+path"});
    for (const std::uint64_t chunks : {1, 2, 4, 16, 64, 256}) {
        const meta::WriteDescriptor w{2, blob_size / 2, chunks * c,
                                      blob_size, blob_size};
        const auto nodes = created_ranges(w, geo).size();
        // An aligned k-chunk write creates the full subtree over its
        // leaves (2k-1 nodes) plus the path from that subtree's root up
        // to the tree root (log2(1024/k) nodes).
        std::uint64_t log_k = 0;
        for (std::uint64_t v = chunks; v > 1; v /= 2) {
            ++log_k;
        }
        table.row(chunks, nodes, 2 * chunks - 1 + (10 - log_k));
    }
    table.print(
        "E7c: metadata nodes created per write vs write size (64 MB "
        "blob, 64 KB chunks)");
}

void clone_cost() {
    constexpr std::uint64_t kChunk = 64 << 10;
    Table table({"blob MB", "clone ms", "read-after-clone ok"});
    for (const std::uint64_t mb : {1, 4, 16, 64}) {
        auto cfg = grid_config(8, 4);
        core::Cluster cluster(cfg);
        auto owner = cluster.make_client();
        core::Blob blob = owner->create(kChunk);
        const std::uint64_t size = mb << 20;
        const std::uint64_t stripe = size / 4;
        for (std::uint64_t off = 0; off < size; off += stripe) {
            owner->write(blob.id(), off,
                         make_pattern(blob.id(), 1, off, stripe));
        }
        const Stopwatch sw;
        core::Blob copy = owner->clone(blob.id());
        const double ms = sw.elapsed_seconds() * 1000.0;
        Buffer out(kChunk);
        copy.read(0, 0, out);
        const bool ok =
            verify_pattern(blob.id(), 1, 0, out) == -1;
        table.row(mb, ms, ok ? "yes" : "NO");
    }
    table.print("E7d: CLONE latency vs blob size (O(1) expected)");
}

void publish_throughput_sharded() {
    // 8 concurrent writers, each publishing its own blob as fast as the
    // version-manager layer allows (assign + commit; the data path is
    // elided — this isolates the paper's "tiny serialized step"). Every
    // shard journals with per-append fsync (the power-failure-durable
    // configuration), so the serialized step per publish is a
    // synchronous journal append. One shard funnels every writer behind
    // ONE journal's sync latency; N shards run N independent journals
    // whose syncs overlap — which is why the aggregate scales even on a
    // single-core host (the step is I/O-bound, not CPU-bound; with
    // buffered journals shard scaling needs real cores to show).
    constexpr std::size_t kWriters = 8;
    const std::size_t ops_per_writer = scaled(150);
    namespace fs = std::filesystem;

    Table table({"vm shards", "publishes/s", "speedup vs 1 shard",
                 "max backlog"});
    double base_rate = 0.0;
    for (const std::size_t shards : {1, 4}) {
        const fs::path root =
            fs::temp_directory_path() /
            ("blobseer-e7-vmshards-" + std::to_string(::getpid()) + "-" +
             std::to_string(shards));
        fs::remove_all(root);

        std::vector<std::unique_ptr<version::VersionManager>> vms;
        std::vector<std::shared_ptr<engine::LogEngine>> journals;
        for (std::size_t i = 0; i < shards; ++i) {
            vms.push_back(std::make_unique<version::VersionManager>(
                static_cast<std::uint32_t>(i),
                static_cast<std::uint32_t>(shards)));
            engine::EngineConfig jc;
            jc.dir = root / ("vm-" + std::to_string(i));
            jc.background_compaction = false;
            jc.checkpoint_interval_records = 0;
            jc.fsync_appends = true;
            journals.push_back(std::make_shared<engine::LogEngine>(jc));
            vms.back()->attach_journal(journals.back());
        }

        std::vector<BlobId> blobs(kWriters);
        for (std::size_t j = 0; j < kWriters; ++j) {
            blobs[j] = vms[j % shards]->create_blob(64 << 10, 1).id;
        }

        const double secs = run_clients(kWriters, [&](std::size_t j) {
            version::VersionManager& vm = *vms[j % shards];
            const BlobId blob = blobs[j];
            for (std::size_t k = 0; k < ops_per_writer; ++k) {
                const auto a = vm.assign(blob, std::nullopt, 64 << 10);
                vm.commit(blob, a.version);
            }
        });

        std::uint64_t published = 0;
        std::uint64_t backlog_hw = 0;
        for (const auto& vm : vms) {
            published += vm->publishes();
            backlog_hw = std::max(backlog_hw,
                                  vm->publish_backlog().high_water());
        }
        const double rate = static_cast<double>(published) / secs;
        if (shards == 1) {
            base_rate = rate;
        }
        table.row(shards, rate,
                  base_rate > 0.0 ? rate / base_rate : 1.0, backlog_hw);

        vms.clear();       // drop journal references before deleting
        journals.clear();  // the engines' directories
        fs::remove_all(root);
    }
    table.print(
        "E7e: aggregate publish throughput vs VM shards (8 writers, "
        "distinct blobs, sync-durable per-shard journals)");
}

}  // namespace

int main() {
    read_vs_age();
    chunk_size_sweep();
    nodes_per_write();
    clone_cost();
    publish_throughput_sharded();
    return 0;
}
