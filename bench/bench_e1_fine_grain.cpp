/// \file bench_e1_fine_grain.cpp
/// \brief Experiment E1 (paper §IV-A, results of [14]): scalability of
///        concurrent fine-grain access to one huge blob.
///
/// N clients concurrently write (then read) disjoint 2 MB regions of a
/// shared blob striped over 16 data providers. The paper's claim: both
/// aggregate curves scale with the client count until provider NICs
/// saturate, and the metadata overhead per operation stays logarithmic.
///
/// Reproduces: "Preliminary experiments ... demonstrated this approach to
/// scale well, both in terms of metadata overhead and in terms of
/// concurrent reads and writes."

#include "bench_util.hpp"

namespace {

using namespace blobseer;
using namespace blobseer::bench;

constexpr std::uint64_t kChunk = 64 << 10;

void run() {
    const std::uint64_t region = scaled(32) * kChunk;  // 2 MB per client
    Table table({"clients", "write MB/s", "read MB/s", "meta msgs/op",
                 "write ms/op", "read ms/op"});

    for (const std::size_t clients : {1, 2, 4, 8, 16, 32}) {
        auto cfg = grid_config(16, 8);
        core::Cluster cluster(cfg);
        auto owner = cluster.make_client();
        core::Blob blob = owner->create(kChunk);

        std::vector<std::unique_ptr<core::BlobSeerClient>> cs;
        for (std::size_t i = 0; i < clients; ++i) {
            cs.push_back(cluster.make_client());
        }

        // Count metadata-provider messages around the write phase.
        std::uint64_t meta_ops0 = 0;
        for (std::size_t i = 0; i < cluster.metadata_provider_count(); ++i) {
            meta_ops0 += cluster.metadata_provider(i).stats().ops.get();
        }

        const double wsec = run_clients(clients, [&](std::size_t i) {
            const Buffer data =
                make_pattern(blob.id(), i, i * region, region);
            cs[i]->write(blob.id(), i * region, data);
        });

        std::uint64_t meta_ops1 = 0;
        for (std::size_t i = 0; i < cluster.metadata_provider_count(); ++i) {
            meta_ops1 += cluster.metadata_provider(i).stats().ops.get();
        }

        const double rsec = run_clients(clients, [&](std::size_t i) {
            Buffer out(region);
            cs[i]->read(blob.id(), kLatestVersion, i * region, out);
        });

        double wlat = 0;
        double rlat = 0;
        for (const auto& c : cs) {
            wlat += c->stats().write_latency_us.mean() / 1000.0;
            rlat += c->stats().read_latency_us.mean() / 1000.0;
        }
        table.row(clients, mbps(clients * region, wsec),
                  mbps(clients * region, rsec),
                  static_cast<double>(meta_ops1 - meta_ops0) /
                      static_cast<double>(clients),
                  wlat / static_cast<double>(clients),
                  rlat / static_cast<double>(clients));
    }
    table.print(
        "E1: aggregate throughput vs concurrent clients "
        "(disjoint 2 MB regions, 16 data providers, 8 metadata providers)");
}

}  // namespace

int main() {
    run();
    return 0;
}
