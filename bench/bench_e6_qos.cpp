/// \file bench_e6_qos.cpp
/// \brief Experiment E6 (paper §IV-E): quality of service under
///        failures — replication + behaviour-model feedback.
///
/// A fleet of clients runs a mixed read/append workload for a fixed
/// span while a scripted failure schedule degrades and kills data
/// providers. Three configurations, as in the paper's GloBeM study:
///
///   no-repl      replication 1, no feedback (failures lose data)
///   repl         replication 2, no feedback
///   repl+model   replication 2 + behaviour model classifying provider
///                windows and steering placement away from dangerous
///                providers
///
/// Reported per configuration: mean aggregate throughput, p5/p95
/// stability band of the per-window throughput, and failed operations.
/// Paper: "Our results show a substantial improvement in quality of
/// service by sustaining a higher and more stable data access
/// throughput."

#include <atomic>

#include "bench_util.hpp"
#include "qos/behavior_model.hpp"
#include "qos/failure_schedule.hpp"
#include "qos/monitor.hpp"

namespace {

using namespace blobseer;
using namespace blobseer::bench;

constexpr std::uint64_t kChunk = 64 << 10;

struct RunResult {
    double mean_mbps = 0;
    double p5_mbps = 0;
    double p95_mbps = 0;
    std::uint64_t failed_ops = 0;
};

RunResult run_config(std::uint32_t replication, bool feedback,
                     double duration_s) {
    auto cfg = grid_config(8, 4, 20'000);
    cfg.default_replication = replication;
    core::Cluster cluster(cfg);
    auto owner = cluster.make_client();
    core::Blob blob = owner->create(kChunk, replication);
    const std::uint64_t preload = 64 * kChunk;
    owner->write(blob.id(), 0, make_pattern(blob.id(), 0, 0, preload));

    // Deterministic fault timeline: every 3 s one provider goes bad for
    // 2.5 s — mostly gray failures (slow-but-alive), occasionally a
    // crash.
    auto schedule =
        qos::FailureSchedule::random(cluster.data_provider_count(),
                                     duration_s, 3.0, 2.5, 0.2, 42);

    qos::ClusterMonitor monitor(cluster);
    qos::BehaviorModel model;

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> ok_bytes{0};
    std::atomic<std::uint64_t> failed{0};

    const std::size_t clients = 8;
    std::vector<std::unique_ptr<core::BlobSeerClient>> cs;
    for (std::size_t i = 0; i < clients; ++i) {
        cs.push_back(cluster.make_client());
    }
    std::vector<std::thread> workers;
    for (std::size_t i = 0; i < clients; ++i) {
        workers.emplace_back([&, i] {
            Rng rng(i + 1);
            Buffer out(2 * kChunk);
            while (!stop.load()) {
                try {
                    if (rng.chance(0.7)) {
                        const std::uint64_t tiles = preload / out.size();
                        cs[i]->read(blob.id(), kLatestVersion,
                                    rng.below(tiles) * out.size(), out);
                    } else {
                        // Overwrite a random interior region (bounded
                        // working set so the blob does not grow without
                        // limit).
                        const std::uint64_t slot = rng.below(32);
                        cs[i]->write(blob.id(), slot * 2 * kChunk,
                                     make_pattern(blob.id(), slot, 0,
                                                  2 * kChunk));
                    }
                    ok_bytes.fetch_add(out.size());
                } catch (const Error&) {
                    failed.fetch_add(1);
                }
            }
        });
    }

    // Control loop: apply failures, sample the monitor at 4 Hz, refit +
    // feed back every 500 ms.
    std::vector<std::uint64_t> window_bytes;
    const Stopwatch sw;
    std::uint64_t last_ok = 0;
    int tick = 0;
    while (sw.elapsed_seconds() < duration_s) {
        std::this_thread::sleep_for(milliseconds(250));
        ++tick;
        schedule.run_until(cluster, sw.elapsed_seconds());
        monitor.sample();
        const std::uint64_t now_ok = ok_bytes.load();
        window_bytes.push_back(now_ok - last_ok);
        last_ok = now_ok;
        if (feedback && tick % 2 == 0) {
            model.fit(monitor);
            model.apply_feedback(monitor, cluster);
            // Gossip the health view to clients so reads prefer healthy
            // replicas (the "client-side quality of service feedback" of
            // §IV-E).
            std::unordered_map<NodeId, double> view;
            for (std::size_t p = 0; p < cluster.data_provider_count();
                 ++p) {
                const NodeId node = cluster.data_provider(p).node();
                view[node] = cluster.provider_manager().health(node);
            }
            for (auto& c : cs) {
                c->update_health_view(view);
            }
        }
    }
    stop.store(true);
    for (auto& w : workers) {
        w.join();
    }

    // Percentiles over the per-window throughput series.
    std::vector<std::uint64_t> sorted = window_bytes;
    std::sort(sorted.begin(), sorted.end());
    auto pct = [&](double q) {
        const std::size_t idx = static_cast<std::size_t>(
            q * static_cast<double>(sorted.size() - 1));
        return mbps(sorted[idx], 0.25);
    };
    RunResult r;
    r.mean_mbps = mbps(ok_bytes.load(), sw.elapsed_seconds());
    r.p5_mbps = sorted.empty() ? 0 : pct(0.05);
    r.p95_mbps = sorted.empty() ? 0 : pct(0.95);
    r.failed_ops = failed.load();
    return r;
}

void run() {
    const double duration = 10.0 * bench_scale();
    Table table({"config", "mean MB/s", "p5 MB/s", "p95 MB/s",
                 "failed ops"});
    const auto none = run_config(1, false, duration);
    table.row("repl=1, no feedback", none.mean_mbps, none.p5_mbps,
              none.p95_mbps, none.failed_ops);
    const auto repl = run_config(2, false, duration);
    table.row("repl=2, no feedback", repl.mean_mbps, repl.p5_mbps,
              repl.p95_mbps, repl.failed_ops);
    const auto fb = run_config(2, true, duration);
    table.row("repl=2 + behaviour model", fb.mean_mbps, fb.p5_mbps,
              fb.p95_mbps, fb.failed_ops);
    table.print(
        "E6: QoS under failures — 8 clients mixed read/write, provider "
        "faults every 3 s");
}

}  // namespace

int main() {
    run();
    return 0;
}
